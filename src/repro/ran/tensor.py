"""Cross-session cohort tensor engine.

Campaign manifests expand into thousands of sessions that differ only
in their derived seed: same operator profile, same duration, same
engine-relevant configuration.  The per-session engines in
:mod:`repro.ran.simulator` pay the full Python/numpy dispatch cost of
the link-adaptation loop once per session; at campaign scale that
dispatch — not the arithmetic — dominates.

This module runs a whole *cohort* of same-shape sessions as one
``(sessions x slots)`` tensor pass:

- **Per-column randomness** is pre-drawn from each session's own
  generator in exactly the order the per-session path draws it, so
  every column consumes its RNG identically by construction.
- **Link adaptation is vectorized across the sessions axis**: the rank
  EWMA/hysteresis chain, the OLLA offset update, the CQI->MCS mapping
  and the TBS resolution run through dense family-padded lookup tables
  — one fancy gather per quantity per period — with elementwise
  float64/integer ops whose IEEE semantics match the per-session
  scalar chain op for op.
- **Decode outcomes evaluate as one 2-D BLER pass per CQI period** —
  the same in-place ufunc sequence the per-session path runs on a 1-D
  slice, which numpy evaluates bit-identically on 2-D views.
- **Execution is three-tiered per (column, period) cell.**  *Clean*
  cells — no failed transmission and no retransmission due inside the
  period — collapse to bookkeeping: the ACK count is a prefix-sum
  difference and the trace slots are bulk-filled from per-period
  constants at flush time.  *Dirty* cells run through the **batched
  retx pass** (:class:`_CohortRetxLanes`): per-column HARQ state lives
  in struct-of-arrays lanes (due-slot / pending-TBS / attempt-count /
  p-hint vectors instead of per-column heaps — valid because due slots
  are strictly monotone in push order, see the class docstring), and
  each round of the period advances *every* dirty column by one event
  (a served retransmission, a special-slot deferral, or a committed
  clean sub-segment) with masked gathers and scatters across the
  cohort axis.  Only genuinely pathological cells — pending retx
  backlog above :data:`_RESIDUAL_PENDING` blocks at period start — drop
  to the *residual* per-column runner :func:`_run_column_period`, a
  flattened transliteration of the segment-batched
  ``_VectorizedEngine.run_period`` / ``_fallback_slot`` pair.  All
  three tiers share the retransmission-window semantics factored into
  :func:`~repro.ran.simulator.retx_fits_slot` /
  :func:`~repro.ran.simulator.retx_error_probability`, and the
  equivalence-matrix tests pin every tier byte-for-byte to the
  ``engine="reference"`` oracle.

Traces are flushed one column at a time (``simulate_*_cohort`` return
lazy generators), so a reducing consumer folds each session's sketch
straight out of the tensor state with a single column trace live at a
time instead of materializing the whole cohort.

Materializing consumers instead pass ``arena_factory``: the engine
then allocates one :class:`~repro.xcal.arena.CohortArena` for the
cohort and the flush becomes a handful of cohort-wide 2-D masked
writes straight into the arena — per-session traces are zero-copy row
views, and the per-column trace-construction walk (the old ~45% flush
share) disappears.  With a factory that allocates the arena in shared
memory, the same writes land directly in a segment the parent process
can map (the ``transport="shm"`` path of :mod:`repro.core.runner`).
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Iterator, Sequence

import numpy as np

from repro.channel.model import ChannelRealization
from repro.ran import _native
from repro.nr.cqi import CQI_MAX
from repro.nr.mcs import Modulation
from repro.nr.signal import sinr_to_cqi
from repro.nr.tdd import SlotType
from repro.ran.amc import Olla
from repro.ran.config import CellConfig
from repro.ran.simulator import (BACKGROUND_TRIM_MAX, SLOT_DL, SLOT_SPECIAL,
                                 SLOT_UL, SimParams, _mappers, _RB_QUANTUM,
                                 _slot_types, _TbsCache, _usable_symbols,
                                 _forward_fill_cqi, replace,
                                 retx_error_probability, retx_fits_slot)
from repro.xcal.arena import CohortArena
from repro.xcal.records import SlotTrace, TraceMetadata

__all__ = [
    "cohort_stats",
    "render_cohort_stats",
    "reset_cohort_stats",
    "simulate_downlink_cohort",
    "simulate_uplink_cohort",
]


# ---------------------------------------------------------------------- #
# Cohort-path counters (surfaced by ``repro cache stats``)
# ---------------------------------------------------------------------- #
_COUNTERS = {
    "cohorts": 0,            # tensor passes run in this process
    "columns": 0,            # sessions executed through a tensor pass
    # Columns that instantiated the residual runner at least once — a
    # *touched* count, not a per-period fallback share (a column counts
    # once even if a single period of thousands went residual; the
    # per-cell split is batched_periods / residual_periods).
    "columns_touched_fallback": 0,
    "cells": 0,              # (column, period) cells examined
    "dirty_periods": 0,      # cells with HARQ retx work (batched + residual)
    "batched_periods": 0,    # dirty cells handled by the batched retx lanes
    "native_periods": 0,     # batched cells that ran the compiled kernel
    "residual_periods": 0,   # dirty cells through _run_column_period
    "slots": 0,              # column-slots processed by tensor passes
    "seconds": 0.0,          # wall time inside tensor passes
    "predraw_s": 0.0,        # per-column RNG pre-draw + measurement chain
    "pass_s": 0.0,           # vectorized period loop (LA/BLER/bookkeeping);
    #                          with an arena this includes committing the
    #                          loop's results in place (the clean fill)
    "batched_s": 0.0,        # batched retx lanes (dirty cells, cohort-wide);
    #                          with an arena, includes the lanes' event scatter
    "residual_s": 0.0,       # residual per-column fallback
    "flush_s": 0.0,          # trace materialization: without an arena, the
    #                          whole per-column re-expansion walk; with one,
    #                          what remains — view creation, residual
    #                          columns, CQI forward-fill
}


def cohort_stats() -> dict:
    """Counters of the cohort tensor path in this process.

    ``dirty_periods`` counts (column, period) cells with retransmission
    work; of those, ``batched_periods`` ran through the batched retx
    lanes (``native_periods`` of them via the compiled kernel) and
    ``residual_periods`` through the per-column runner.
    ``columns_touched_fallback`` counts columns that *ever* took the
    residual path — one dirty period out of thousands still counts the
    whole column, so compare it with ``residual_periods / cells`` for
    the actual fallback share, not with ``dirty_periods``.  The
    ``*_s`` keys decompose ``seconds`` into the pass phases surfaced
    by ``repro bench --workload tensor``.
    """
    return dict(_COUNTERS)


def reset_cohort_stats() -> None:
    for key, value in _COUNTERS.items():
        _COUNTERS[key] = 0.0 if isinstance(value, float) else 0


def render_cohort_stats() -> str:
    """One-line summary, shaped like the TBS cache line.

    Reports the dirty-cell *fraction* and the batched-vs-residual
    split, not just raw counters — a 100%-fallback regression must be
    visible at a glance.
    """
    s = cohort_stats()
    rate = s["slots"] / s["seconds"] if s["seconds"] > 0 else 0.0
    cells = s["cells"]
    dirty = s["dirty_periods"]
    dirty_pct = 100.0 * dirty / cells if cells else 0.0
    resid_pct = 100.0 * s["residual_periods"] / dirty if dirty else 0.0
    return (f"tensor cohorts={s['cohorts']} columns={s['columns']} "
            f"columns_touched_fallback={s['columns_touched_fallback']} "
            f"dirty={dirty}/{cells} ({dirty_pct:.1f}%) "
            f"batched={s['batched_periods']} (native={s['native_periods']}) "
            f"residual={s['residual_periods']} ({resid_pct:.1f}% of dirty) "
            f"slots_per_s={rate:,.0f}")


# ---------------------------------------------------------------------- #
# Dense link-adaptation lookup tables
# ---------------------------------------------------------------------- #
# CQI->MCS through the vendor mapper is a pure function of
# (fallback?, cqi, olla offset); the offset is bounded by the Olla
# clamp, so the whole map densifies into one integer LUT per carrier
# family.  Cached process-wide: every cohort on a carrier reuses it.
_MCS_LUT_CACHE: dict = {}

#: Integer OLLA offset bounds (``Olla`` is always constructed with
#: defaults by the simulation loop; the offset is ``round(delta)`` of a
#: delta clamped to these bounds).
_OFF_LO = int(round(Olla().min_offset))
_OFF_HI = int(round(Olla().max_offset))


def _la_luts(cell: CellConfig):
    """(mcs_lut, eff_lut, mod_lut, n_max) for a carrier.

    ``mcs_lut[fb, cqi, offset - _OFF_LO]`` is the MCS index the mapper
    returns; ``eff_lut[fb, mcs]`` / ``mod_lut[fb, mcs]`` the entry's
    spectral efficiency and modulation order.  The family axis is
    0=primary, 1=DCI 1_0 fallback; the MCS axis pads to the longer
    table so both families gather through one fancy index — padding is
    never read, because an MCS index is only ever paired with the
    family whose mapper produced it.
    """
    key = (cell.max_modulation, cell.mapping_policy, cell.band_name)
    cached = _MCS_LUT_CACHE.get(key)
    if cached is not None:
        return cached
    mappers = _mappers(cell)
    n_off = _OFF_HI - _OFF_LO + 1
    n_max = max(len(m.mcs_table) for m in mappers)
    mcs_lut = np.zeros((2, CQI_MAX + 1, n_off), dtype=np.int64)
    eff_lut = np.zeros((2, n_max))
    mod_lut = np.zeros((2, n_max), dtype=np.int64)
    for fb, mapper in enumerate(mappers):
        table = mapper.mcs_table
        for cqi in range(CQI_MAX + 1):
            for j, offset in enumerate(range(_OFF_LO, _OFF_HI + 1)):
                mcs_lut[fb, cqi, j] = mapper.mcs_for_cqi(cqi, olla_offset=offset)
        for m, entry in enumerate(table):
            eff_lut[fb, m] = entry.spectral_efficiency
            mod_lut[fb, m] = entry.modulation.bits_per_symbol
    cached = (mcs_lut, eff_lut, mod_lut, n_max)
    _MCS_LUT_CACHE[key] = cached
    return cached


# ---------------------------------------------------------------------- #
# Batched retx lanes: the period-major dirty-cell pass
# ---------------------------------------------------------------------- #

#: Due-slot sentinel for empty lane entries — far beyond any slot index,
#: so ``due[:, 0] < stop`` doubles as the "head pending and due inside
#: this period" predicate without a separate emptiness mask.
_FAR = np.int64(1) << 60

#: Pending-backlog ceiling for the batched lanes.  A column holding
#: more queued retransmissions than this at period start is genuinely
#: pathological (sustained near-certain failure at long RTT); its round
#: count would make the whole cohort's batched pass iterate for a
#: handful of stragglers, so the cell drops to the residual per-column
#: runner instead.  The bench gate asserts the residual tier stays
#: below 5% of dirty cells.
_RESIDUAL_PENDING = 6


def _next_slot_table(mask: np.ndarray) -> np.ndarray:
    """``nxt[j]`` = smallest slot ``k >= j`` with ``mask[k]`` (else
    ``mask.size``) — a suffix-minimum over the masked slot indices."""
    n = mask.size
    idx = np.where(mask, np.arange(n, dtype=np.int64), n)
    return np.minimum.accumulate(idx[::-1])[::-1].copy()


class _CohortRetxLanes:
    """Struct-of-arrays HARQ retransmission state for a whole cohort.

    One lane (row) per column.  ``due[c, :n[c]]`` holds the due slots
    of the column's pending retransmission blocks in **strictly
    increasing order**, with ``tbs``/``att``/``p`` the matching TBS,
    attempt count and error-probability hint.  A flat sorted lane is
    exactly equivalent to the per-session engines' due-slot min-heap
    because every push is ``slot + harq_rtt_slots`` with at most one
    push per slot (a slot serves a retransmission *or* transmits new
    data, never both): due slots are unique and monotone in push
    order, so FIFO order == heap order and the ``_RetxQueue`` sequence
    tie-break can never fire.

    :meth:`run_period` advances all dirty columns of one CQI period in
    lock-step *rounds*.  Per round each active column handles its next
    event — serve the due head at the first eligible slot (the shared
    :func:`~repro.ran.simulator.retx_fits_slot` rule, resolved through
    precomputed next-eligible-slot tables), transmit new data in a
    special slot that cannot carry an oversized due block (the
    deferral rule), or commit a maximal clean sub-segment bounded by
    the head's due slot and the first fresh NACK's re-arm point — as
    masked gathers/scatters across the cohort axis.  Every round
    strictly advances each active cursor, so a period of ``m`` slots
    takes at most ``m`` rounds and typically two or three.

    Committed sub-segments and served/deferred events are buffered as
    arrays per round; :meth:`committed_mask` / :meth:`events_by_column`
    re-shape them for the flush, which writes the identical bytes the
    per-session engines produce.
    """

    def __init__(self, n_cols: int, n_slots: int, usable: np.ndarray,
                 special_mask: np.ndarray, cum4: np.ndarray,
                 rtt: int, scale: float, max_attempts: int):
        self.n_cols = n_cols
        self.n_slots = n_slots
        self.special = special_mask
        self.cum4 = cum4
        self.rtt = rtt
        self.scale = scale
        self.max_attempts = max_attempts
        # Next-eligible-slot tables for the three serve/defer targets:
        # any usable slot (a fitting block), usable full slots (an
        # oversized block), usable special slots (deferral candidates).
        self.nxt_usable = _next_slot_table(usable)
        self.nxt_full = _next_slot_table(usable & ~special_mask)
        self.nxt_special = _next_slot_table(usable & special_mask)
        # With no usable special slot anywhere (FDD-like patterns) the
        # serve target never depends on the head size and deferral is
        # impossible, so the window phase can skip both decisions.
        self.no_defer = not bool((usable & special_mask).any())
        # Byte views + scratch for the compiled kernel (grown lazily;
        # unused when the native tier is unavailable).
        self._usable_u8 = np.ascontiguousarray(usable).view(np.uint8)
        self._special_u8 = np.ascontiguousarray(special_mask).view(np.uint8)
        self._nat_rows = 0
        self._nat_args: list | None = None
        cap = 8
        self.due = np.full((n_cols, cap), _FAR, dtype=np.int64)
        self.tbs = np.zeros((n_cols, cap), dtype=np.int64)
        self.att = np.zeros((n_cols, cap), dtype=np.int64)
        self.p = np.zeros((n_cols, cap))
        self.n = np.zeros(n_cols, dtype=np.int64)
        # Flush buffers: committed sub-segments as (col, lo, hi) triples
        # and fallback events as (col, slot, tbs, ok, is_retx) rows,
        # appended one array per round.
        self._seg_cols: list[np.ndarray] = []
        self._seg_lo: list[np.ndarray] = []
        self._seg_hi: list[np.ndarray] = []
        self._ev_cols: list[np.ndarray] = []
        self._ev_slot: list[np.ndarray] = []
        self._ev_tbs: list[np.ndarray] = []
        self._ev_ok: list[np.ndarray] = []
        self._ev_retx: list[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # Lane capacity and heap interchange (residual tier)
    # ------------------------------------------------------------------ #
    def _ensure_cap(self, need: int) -> None:
        cap = self.due.shape[1]
        if need <= cap:
            return
        new = max(need, 2 * cap)

        def widen(a: np.ndarray, fill) -> np.ndarray:
            b = np.full((self.n_cols, new), fill, dtype=a.dtype)
            b[:, :cap] = a
            return b

        self.due = widen(self.due, _FAR)
        self.tbs = widen(self.tbs, 0)
        self.att = widen(self.att, 0)
        self.p = widen(self.p, 0.0)
        if self._nat_args is not None:
            self._refresh_native_ptrs()

    def export_heap(self, c: int) -> list[tuple]:
        """A column's lane as ``_RetxQueue``-shaped heap tuples (the
        sorted lane is a valid min-heap; seq = lane position)."""
        k = int(self.n[c])
        due, tbs, att, p = self.due[c], self.tbs[c], self.att[c], self.p[c]
        return [(int(due[i]), i, int(tbs[i]), int(att[i]), float(p[i]))
                for i in range(k)]

    def import_heap(self, c: int, heap: list[tuple]) -> None:
        """Re-absorb a column's heap after a residual period (due order
        restored by sorting; dues are unique, so the order is total)."""
        entries = sorted(heap)
        k = len(entries)
        self._ensure_cap(k)
        due, tbs, att, p = self.due[c], self.tbs[c], self.att[c], self.p[c]
        for i, (d, _seq, t, a, hint) in enumerate(entries):
            due[i] = d
            tbs[i] = t
            att[i] = a
            p[i] = hint
        due[k:] = _FAR
        self.n[c] = k

    # ------------------------------------------------------------------ #
    # The batched pass
    # ------------------------------------------------------------------ #
    def run_period(self, bidx: np.ndarray, start: int, stop: int,
                   failm_b: np.ndarray, case_b: np.ndarray,
                   tbsf_b: np.ndarray, tbss_b: np.ndarray,
                   retx2: np.ndarray, decoded2: np.ndarray,
                   p_err2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Advance the batched dirty columns ``bidx`` through one
        period; returns their per-column (acks, nacks) over new
        transmissions, exactly as the scalar oracle counts them.

        Each round runs the segment phase first, so a column whose
        clean sub-segment ends at a due (or freshly re-armed) head is
        served by the window phase of the *same* round: the common
        dirty cell — one failed transmission, one retransmission —
        costs two rounds instead of four.

        When the compiled kernel is available the same advance runs
        natively (identical semantics, identical buffers — see
        ``_retx_kernel.c``); this numpy pass is the portable tier.
        """
        kernel = _native.load_kernel()
        if kernel is not None:
            return self._run_period_native(
                kernel, bidx, start, stop, failm_b, case_b,
                tbsf_b, tbss_b, retx2, decoded2, p_err2)
        nb = bidx.size
        m = stop - start
        rtt = self.rtt
        spec = self.special
        cum4 = self.cum4
        max_att = self.max_attempts
        nxt_u, nxt_f, nxt_s = self.nxt_usable, self.nxt_full, self.nxt_special
        no_defer = self.no_defer

        # Local working copies of the selected lanes (scattered back at
        # the end; capacity growth stays local until then).  ``due0``
        # views the head column, so pops and pushes keep it current.
        due = self.due[bidx]
        tbs = self.tbs[bidx]
        att = self.att[bidx]
        ph = self.p[bidx]
        pn = self.n[bidx]
        cap = due.shape[1]
        due0 = due[:, 0]

        def grow(need: int) -> None:
            nonlocal due, tbs, att, ph, cap, due0
            new = max(need, 2 * cap)

            def widen(a: np.ndarray, fill) -> np.ndarray:
                b = np.full((nb, new), fill, dtype=a.dtype)
                b[:, :cap] = a
                return b

            due = widen(due, _FAR)
            tbs = widen(tbs, 0)
            att = widen(att, 0)
            ph = widen(ph, 0.0)
            cap = new
            due0 = due[:, 0]

        # Fresh-NACK bookkeeping: prefix counts give both the number of
        # NACKs a committed range queues and — because the cursor only
        # ever consumes positions it passes — the ordinal of the next
        # candidate; a suffix-minimum over absolute candidate re-arm
        # slots (``start + pos + rtt``, sentinel past the period) bounds
        # every segment with a single gather + minimum: the oracle's
        # two-clause shrink rule (first < end and first + rtt < end)
        # collapses to it because rtt >= 1 makes the first clause
        # redundant, and the re-arm point always sits strictly past the
        # cursor, so rounds keep advancing.
        total_err = int(failm_b.sum())
        if total_err:
            cumf = np.zeros((nb, m + 1), dtype=np.int64)
            np.cumsum(failm_b, axis=1, out=cumf[:, 1:])
            ecnt = cumf[:, m]
            rearm = np.where(failm_b, np.arange(m, dtype=np.int64), m)
            rearm = np.minimum.accumulate(rearm[:, ::-1], axis=1)[:, ::-1]
            rearm += start + rtt
            err_pad = np.full((nb, int(ecnt.max())), m, dtype=np.int64)
            erows, epos = np.nonzero(failm_b)
            row0 = np.cumsum(ecnt) - ecnt
            err_pad[erows, np.arange(erows.size) - row0[erows]] = epos

        cur = np.full(nb, start, dtype=np.int64)
        acks_b = np.zeros(nb, dtype=np.int64)
        nacks_b = np.zeros(nb, dtype=np.int64)
        live = np.ones(nb, dtype=bool)

        while live.any():
            # --- segment phase: commit one clean sub-segment ----------
            gidx = np.flatnonzero(live & (due0 > cur))
            if gidx.size:
                i0 = cur[gidx]
                send = np.minimum(due0[gidx], stop)
                cg = case_b[gidx]
                self._seg_cols.append(bidx[gidx])
                self._seg_lo.append(i0)
                if total_err:
                    send = np.minimum(send, rearm[gidx, i0 - start])
                    cnt = cum4[cg, send] - cum4[cg, i0]
                    e0 = cumf[gidx, i0 - start]
                    npush = cumf[gidx, send - start] - e0
                    acks_b[gidx] += cnt - npush
                    nacks_b[gidx] += npush
                    tot = int(npush.sum())
                    if tot == 0:
                        pass
                    elif int(npush.max()) == 1:
                        # Fast path: at most one fresh NACK per column
                        # this round — direct scatter, no repeats.
                        pm = npush > 0
                        rep = gidx[pm]
                        pos = err_pad[rep, e0[pm]]
                        slot = pn[rep]
                        if int(slot.max()) >= cap:
                            grow(cap + 1)
                        due[rep, slot] = start + pos + rtt
                        tbs[rep, slot] = np.where(spec[start + pos],
                                                  tbss_b[rep], tbsf_b[rep])
                        att[rep, slot] = 1
                        ph[rep, slot] = p_err2[bidx[rep], pos]
                        pn[rep] += 1
                    else:
                        rep = np.repeat(gidx, npush)
                        k = np.arange(tot, dtype=np.int64) \
                            - np.repeat(np.cumsum(npush) - npush, npush)
                        pos = err_pad[rep, np.repeat(e0, npush) + k]
                        slot = pn[rep] + k
                        need = int(slot.max()) + 1
                        if need > cap:
                            grow(need)
                        due[rep, slot] = start + pos + rtt
                        tbs[rep, slot] = np.where(spec[start + pos],
                                                  tbss_b[rep], tbsf_b[rep])
                        att[rep, slot] = 1
                        ph[rep, slot] = p_err2[bidx[rep], pos]
                        pn[gidx] += npush
                else:
                    acks_b[gidx] += cum4[cg, send] - cum4[cg, i0]
                self._seg_hi.append(send)
                cur[gidx] = send
                np.less(cur, stop, out=live)

            # --- window phase: one serve/deferral event per column ----
            widx = np.flatnonzero(live & (due0 <= cur))
            if not widx.size:
                if not gidx.size:
                    break
                continue
            w = cur[widx]
            if no_defer:
                j_srv = nxt_u[w]
                do_srv = j_srv < stop
                do_def = None
            else:
                tsp = tbss_b[widx]
                fits = tbs[widx, 0] <= tsp  # vectorized retx_fits_slot
                j_srv = np.where(fits, nxt_u[w], nxt_f[w])
                j_def = np.where(fits | (tsp <= 0), _FAR, nxt_s[w])
                do_def = (j_def < j_srv) & (j_def < stop)
                do_srv = ~do_def & (j_srv < stop)
            # Default every window column to the halt outcome (no
            # eligible slot left: the cursor crawls to the boundary
            # with the head still due); serve/defer overwrite below.
            cur[widx] = stop
            sidx = widx[do_srv]
            if sidx.size:
                s = j_srv[do_srv]
                g = bidx[sidx]
                s_tbs = tbs[sidx, 0]
                s_att = att[sidx, 0]
                s_ph = ph[sidx, 0]
                ok = retx2[g, s] >= retx_error_probability(s_ph, self.scale)
                self._ev_cols.append(g)
                self._ev_slot.append(s)
                self._ev_tbs.append(s_tbs)
                self._ev_ok.append(ok)
                self._ev_retx.append(np.ones(s.size, dtype=bool))
                # Pop the served head (lanes shift left, staying
                # due-sorted) and requeue scaled failures.
                due[sidx, :-1] = due[sidx, 1:]
                due[sidx, -1] = _FAR
                tbs[sidx, :-1] = tbs[sidx, 1:]
                att[sidx, :-1] = att[sidx, 1:]
                ph[sidx, :-1] = ph[sidx, 1:]
                pn[sidx] -= 1
                requeue = ~ok & (s_att + 1 < max_att)
                if requeue.any():
                    r = sidx[requeue]
                    slot = pn[r]
                    due[r, slot] = s[requeue] + rtt
                    tbs[r, slot] = s_tbs[requeue]
                    att[r, slot] = s_att[requeue] + 1
                    ph[r, slot] = s_ph[requeue]
                    pn[r] += 1
                cur[sidx] = s + 1
            if do_def is not None and do_def.any():
                # Deferral: the special slot carries new data while
                # the oversized block waits for the next full slot.
                didx = widx[do_def]
                d = j_def[do_def]
                g = bidx[didx]
                d_tbs = tbss_b[didx]
                ok = decoded2[g, d]
                self._ev_cols.append(g)
                self._ev_slot.append(d)
                self._ev_tbs.append(d_tbs.copy())
                self._ev_ok.append(ok)
                self._ev_retx.append(np.zeros(d.size, dtype=bool))
                acks_b[didx] += ok
                bad = ~ok
                if bad.any():
                    b = didx[bad]
                    if int(pn[b].max()) >= cap:
                        grow(cap + 1)
                    slot = pn[b]
                    due[b, slot] = d[bad] + rtt
                    tbs[b, slot] = d_tbs[bad]
                    att[b, slot] = 1
                    ph[b, slot] = p_err2[g[bad], d[bad] - start]
                    pn[b] += 1
                    nacks_b[b] += 1
                cur[didx] = d + 1
            np.less(cur, stop, out=live)

        # Scatter the lanes back (untouched rows beyond the local
        # capacity are already at the _FAR sentinel).
        self._ensure_cap(cap)
        self.due[bidx, :cap] = due
        self.tbs[bidx, :cap] = tbs
        self.att[bidx, :cap] = att
        self.p[bidx, :cap] = ph
        self.n[bidx] = pn
        return acks_b, nacks_b

    # ------------------------------------------------------------------ #
    # Native tier
    # ------------------------------------------------------------------ #
    def _grow_native_scratch(self, rows: int) -> None:
        self._nat_rows = rows
        self._nat_seg_col = np.empty(rows, dtype=np.int64)
        self._nat_seg_lo = np.empty(rows, dtype=np.int64)
        self._nat_seg_hi = np.empty(rows, dtype=np.int64)
        self._nat_ev_col = np.empty(rows, dtype=np.int64)
        self._nat_ev_slot = np.empty(rows, dtype=np.int64)
        self._nat_ev_tbs = np.empty(rows, dtype=np.int64)
        self._nat_ev_ok = np.empty(rows, dtype=bool)
        self._nat_ev_retx = np.empty(rows, dtype=bool)
        self._nat_acks = np.empty(self.n_cols, dtype=np.int64)
        self._nat_nacks = np.empty(self.n_cols, dtype=np.int64)
        self._nat_counts = np.empty(2, dtype=np.int64)
        if self._nat_args is not None:
            self._refresh_native_ptrs()

    def _refresh_native_ptrs(self) -> None:
        """Re-read the data pointers of reallocatable arrays into the
        cached argument list (lane arrays move on ``_ensure_cap``,
        scratch on ``_grow_native_scratch``)."""
        a = self._nat_args
        a[4] = self.due.shape[1]
        a[5] = self.due.ctypes.data
        a[6] = self.tbs.ctypes.data
        a[7] = self.att.ctypes.data
        a[8] = self.p.ctypes.data
        for i, arr in enumerate((
                self._nat_acks, self._nat_nacks, self._nat_seg_col,
                self._nat_seg_lo, self._nat_seg_hi, self._nat_ev_col,
                self._nat_ev_slot, self._nat_ev_tbs, self._nat_ev_ok,
                self._nat_ev_retx, self._nat_counts), start=26):
            a[i] = arr.ctypes.data

    def _bind_native(self, retx2: np.ndarray, decoded2: np.ndarray,
                     p_err2: np.ndarray) -> None:
        """Build the cached kernel argument list once per cohort.

        ``ndarray.ctypes.data`` costs ~1us per access; at ~35 arguments
        per period call that attribute churn would rival the kernel
        itself, so per-cohort constants are resolved here and only the
        genuinely per-call slots are rewritten in the hot path."""
        self._nat_args = [
            0, 0, 0, 0,                                   # nb, bidx, start, stop
            0, 0, 0, 0, 0,                                # cap, due, tbs, att, ph
            self.n.ctypes.data, int(_FAR),
            0, 0, 0, 0,                                   # failm, case, tbsf, tbss
            self.n_slots, retx2.ctypes.data, decoded2.ctypes.data,
            p_err2.ctypes.data, p_err2.shape[1],
            self.cum4.ctypes.data, self._usable_u8.ctypes.data,
            self._special_u8.ctypes.data,
            self.rtt, self.scale, self.max_attempts,
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,              # outputs
        ]
        self._refresh_native_ptrs()

    def _run_period_native(self, kernel, bidx: np.ndarray,
                           start: int, stop: int,
                           failm_b: np.ndarray, case_b: np.ndarray,
                           tbsf_b: np.ndarray, tbss_b: np.ndarray,
                           retx2: np.ndarray, decoded2: np.ndarray,
                           p_err2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One compiled-kernel call for the whole batched period.

        Operates on the lane arrays in place (capacity pre-grown to the
        worst case: each slot queues at most one block, so the pending
        count can rise by at most the period length) and drains the
        kernel's segment/event buffers into the same flush lists the
        numpy rounds append, in the same within-column order.
        """
        nb = bidx.size
        m = stop - start
        self._ensure_cap(int(self.n[bidx].max()) + m)
        rows = nb * m
        if self._nat_rows < rows:
            self._grow_native_scratch(rows)
        if self._nat_args is None:
            self._bind_native(retx2, decoded2, p_err2)
        args = self._nat_args
        args[0] = nb
        args[1] = bidx.ctypes.data
        args[2] = start
        args[3] = stop
        args[11] = failm_b.ctypes.data
        args[12] = case_b.ctypes.data
        args[13] = tbsf_b.ctypes.data
        args[14] = tbss_b.ctypes.data
        rc = kernel(*args)
        if rc != 0:  # pragma: no cover - the kernel cannot fail today
            raise RuntimeError(f"native retx kernel returned {rc}")
        ns = int(self._nat_counts[0])
        ne = int(self._nat_counts[1])
        if ns:
            self._seg_cols.append(self._nat_seg_col[:ns].copy())
            self._seg_lo.append(self._nat_seg_lo[:ns].copy())
            self._seg_hi.append(self._nat_seg_hi[:ns].copy())
        if ne:
            self._ev_cols.append(self._nat_ev_col[:ne].copy())
            self._ev_slot.append(self._nat_ev_slot[:ne].copy())
            self._ev_tbs.append(self._nat_ev_tbs[:ne].copy())
            self._ev_ok.append(self._nat_ev_ok[:ne].copy())
            self._ev_retx.append(self._nat_ev_retx[:ne].copy())
        # Views of reusable scratch: the caller scatters these into its
        # per-column accumulators immediately, before the next call.
        return self._nat_acks[:nb], self._nat_nacks[:nb]

    # ------------------------------------------------------------------ #
    # Flush shaping
    # ------------------------------------------------------------------ #
    def committed_mask(self) -> np.ndarray | None:
        """(n_cols, n_slots) bool of batched committed sub-segment
        ranges (pre-AND with the transmit pattern), or ``None``."""
        if not self._seg_cols:
            return None
        c = np.concatenate(self._seg_cols)
        lo = np.concatenate(self._seg_lo)
        hi = np.concatenate(self._seg_hi)
        delta = np.zeros((self.n_cols, self.n_slots + 1), dtype=np.int32)
        np.add.at(delta, (c, lo), 1)
        np.add.at(delta, (c, hi), -1)
        return np.cumsum(delta[:, :-1], axis=1, dtype=np.int32) > 0

    def events_by_column(self):
        """Served/deferred events grouped by column for the flush:
        ``(bounds, slots, tbs, ok, is_retx)`` with column ``c``'s rows
        at ``[bounds[c]:bounds[c + 1]]``, or ``None``."""
        if not self._ev_cols:
            return None
        c = np.concatenate(self._ev_cols)
        order = np.argsort(c, kind="stable")
        c = c[order]
        bounds = np.searchsorted(c, np.arange(self.n_cols + 1))
        return (bounds,
                np.concatenate(self._ev_slot)[order],
                np.concatenate(self._ev_tbs)[order],
                np.concatenate(self._ev_ok)[order],
                np.concatenate(self._ev_retx)[order])


# ---------------------------------------------------------------------- #
# Per-column fallback state and runner
# ---------------------------------------------------------------------- #
class _Column:
    """Divergent-column state: HARQ heap plus buffered trace writes.

    Created lazily on a column's first dirty period.  ``heap`` holds
    ``(due_slot, seq, tbs_bits, attempts, p_hint)`` tuples exactly like
    :class:`~repro.ran.simulator._RetxQueue`.  Because the per-period
    grant constants cannot change inside a period, buffered trace
    writes are split into slim varying tuples plus one meta row per
    dirty period: ``chunks`` holds ``(committed_count, prb, mcs, mod,
    layers, cqi, dci, tbs_full, tbs_special)`` per period with fast
    segments, ``events`` holds ``(slot, tbs, ok, is_retx)`` per
    fallback slot and ``evmeta`` ``(n_events, prb, mcs, mod, layers,
    cqi, dci)`` per period that produced any — the flush re-expands
    the constants with ``np.repeat``, yielding the exact payloads the
    per-session engine buffers.
    """

    __slots__ = ("heap", "seq", "txmask", "chunks", "events", "evmeta")

    def __init__(self, n_slots: int):
        self.heap: list[tuple] = []
        self.seq = 0
        self.txmask = np.zeros(n_slots, dtype=bool)
        self.chunks: list[tuple] = []
        self.events: list[tuple] = []
        self.evmeta: list[tuple] = []


def _run_column_period(col: _Column, start: int, stop: int,
                       tx: np.ndarray, cum: list, usable: list, special: list,
                       decoded, p_err, retx_u: np.ndarray,
                       consts: tuple, tbs_full: int, tbs_special: int,
                       rtt: int, scale: float, max_attempts: int,
                       err_pos: list,
                       heappop=heappop, heappush=heappush) -> tuple[int, int]:
    """One dirty (column, period) cell with exact engine semantics.

    A flattened transliteration of ``_VectorizedEngine.run_period`` +
    ``_fallback_slot``: identical control flow and float operations,
    but heap/segment state lives in locals and each committed segment
    appends one tuple instead of nine list entries.  ``err_pos``
    carries the period-relative fresh-NACK candidate positions
    (``tx & ~decoded``), precomputed by the caller from the cohort
    decode tensor; ``cum``/``usable``/``special`` arrive as plain
    lists so the hot loop never boxes numpy scalars.
    """
    heap = col.heap
    seq = col.seq
    events = col.events
    e0 = len(events)
    acks = 0
    nacks = 0
    i = start

    if tbs_full <= 0 and tbs_special <= 0:
        # Nothing transmittable this period; only due retransmissions
        # can occupy slots (a deferred retx would hand the slot to new
        # data, which this period cannot carry).
        while i < stop:
            if heap and heap[0][0] <= i and usable[i]:
                if retx_fits_slot(special[i], heap[0][2], tbs_special):
                    _due, _seq, tbs, attempts, p_hint = heappop(heap)
                    ok = retx_u[i] >= retx_error_probability(p_hint, scale)
                    events.append((i, tbs, ok, True))
                    if not ok and attempts + 1 < max_attempts:
                        heappush(heap, (i + rtt, seq, tbs, attempts + 1, p_hint))
                        seq += 1
            i += 1
        col.seq = seq
        n_ev = len(events) - e0
        if n_ev:
            col.evmeta.append((n_ev,) + consts)
        return 0, 0

    uniform_tbs = tbs_special == tbs_full
    n_err = len(err_pos)
    e = 0
    committed = 0
    txmask = col.txmask
    while i < stop:
        if heap and heap[0][0] <= i:
            # Retransmission window: per-slot fallback until the due
            # block is served (or deferred past a special slot that
            # cannot carry it).
            if usable[i]:
                is_special = special[i]
                if retx_fits_slot(is_special, heap[0][2], tbs_special):
                    _due, _seq, tbs, attempts, p_hint = heappop(heap)
                    ok = retx_u[i] >= retx_error_probability(p_hint, scale)
                    events.append((i, tbs, ok, True))
                    if not ok and attempts + 1 < max_attempts:
                        heappush(heap, (i + rtt, seq, tbs, attempts + 1, p_hint))
                        seq += 1
                else:
                    # Deferral: the special slot carries new data instead.
                    tbs = tbs_special if is_special else tbs_full
                    if tbs > 0:
                        j = i - start
                        ok = decoded[j]
                        events.append((i, tbs, ok, False))
                        if ok:
                            acks += 1
                        else:
                            heappush(heap, (i + rtt, seq, tbs, 1,
                                            float(p_err[j])))
                            seq += 1
                            nacks += 1
            i += 1
            # The fallback owned that position — drop any fresh-NACK
            # candidate there (a served retx displaced the new data; a
            # fallback new transmission already queued its own NACK).
            while e < n_err and err_pos[e] < i - start:
                e += 1
            continue
        if not heap:
            seg_end = stop
        else:
            h0 = heap[0][0]
            seg_end = stop if h0 >= stop else h0
        # The first fresh NACK inside the segment re-arms the queue
        # rtt slots later; the segment cannot extend past that.
        if e < n_err:
            first = start + err_pos[e]
            if first < seg_end and first + rtt < seg_end:
                seg_end = first + rtt
        j1 = seg_end - start
        # Queue every fresh NACK in the committed range, slot order:
        # their due slots all lie at or beyond seg_end.
        seg_nacks = 0
        while e < n_err and (pos := err_pos[e]) < j1:
            if uniform_tbs or not special[start + pos]:
                tbs = tbs_full
            else:
                tbs = tbs_special
            heappush(heap, (start + pos + rtt, seq, tbs, 1, float(p_err[pos])))
            seq += 1
            e += 1
            seg_nacks += 1
        nacks += seg_nacks
        txmask[i:seg_end] = tx[i:seg_end]
        cnt = cum[seg_end] - cum[i]
        acks += cnt - seg_nacks
        committed += cnt
        i = seg_end
    col.seq = seq
    # One meta row per period: every fast segment and fallback event in
    # this call shares the same grant constants, so the per-segment /
    # per-event tuples the engine buffers collapse losslessly.
    if committed:
        col.chunks.append((committed,) + consts + (tbs_full, tbs_special))
    n_ev = len(events) - e0
    if n_ev:
        col.evmeta.append((n_ev,) + consts)
    return acks, nacks


def _flush_column(col: _Column, trace: SlotTrace, special_mask: np.ndarray,
                  decoded: np.ndarray) -> None:
    """Materialize a divergent column's buffered slots into its trace —
    the same bulk writes as ``_VectorizedEngine.flush``, reading decode
    outcomes straight from the column's row of the cohort tensor."""
    idx = np.flatnonzero(col.txmask)
    if idx.size:
        # One bulk conversion of the per-period chunk rows; txmask
        # slots are in slot order and each period's committed count is
        # row 0, so np.repeat re-expands the constants in exact
        # per-slot alignment with ``idx``.
        ch = np.array(col.chunks, dtype=np.int64)
        counts = ch[:, 0]

        def rep(k: int) -> np.ndarray:
            return np.repeat(ch[:, k], counts)

        prb = rep(1)
        trace.fill(
            idx, scheduled=True, n_prb=prb, n_re=prb * 12,
            mcs_index=rep(2), modulation_order=rep(3),
            layers=rep(4), cqi=rep(5), dci_format=rep(6),
        )
        tbs_vec = np.where(special_mask[idx], rep(8), rep(7))
        ok = decoded[idx]
        trace.tbs_bits[idx] = tbs_vec
        trace.delivered_bits[idx] = np.where(ok, tbs_vec, 0)
        trace.error[idx] = ~ok
    if col.events:
        # Slim (slot, tbs, ok, is_retx) tuples plus one meta row per
        # producing period; booleans round-trip through int64 exactly.
        ev = np.array(col.events, dtype=np.int64)
        em = np.array(col.evmeta, dtype=np.int64)
        n_ev = em[:, 0]

        def repe(k: int) -> np.ndarray:
            return np.repeat(em[:, k], n_ev)

        ridx = ev[:, 0]
        rtbs = ev[:, 1]
        rok = ev[:, 2].astype(bool)
        rprb = repe(1)
        trace.fill(
            ridx, scheduled=True, n_prb=rprb, n_re=rprb * 12,
            mcs_index=repe(2), modulation_order=repe(3),
            layers=repe(4), cqi=repe(5), dci_format=repe(6),
        )
        trace.is_retx[ridx] = ev[:, 3].astype(bool)
        trace.tbs_bits[ridx] = rtbs
        trace.delivered_bits[ridx] = np.where(rok, rtbs, 0)
        trace.error[ridx] = ~rok


# ---------------------------------------------------------------------- #
# The tensor pass
# ---------------------------------------------------------------------- #
def _simulate_direction_cohort(
    cell: CellConfig,
    channels: Sequence[ChannelRealization],
    direction: SlotType,
    rngs: Sequence[np.random.Generator],
    params: SimParams,
    max_layers: int,
    n_prb: int,
    metadatas: Sequence[TraceMetadata],
    arena_factory=None,
) -> Iterator[SlotTrace]:
    """Cohort counterpart of ``_simulate_direction`` (lazy, one trace
    yielded per column in cohort order).

    ``arena_factory(n_cols, n_slots, mu)`` — when given — supplies a
    :class:`~repro.xcal.arena.CohortArena` the whole flush writes into
    as cohort-wide 2-D passes; yielded traces are then zero-copy row
    views of the arena.  A factory returning ``None`` (e.g. a failed
    shared-memory allocation) falls back to the lazy per-column flush.
    """
    t0 = time.perf_counter()
    n_cols = len(channels)
    n_slots = channels[0].n_slots
    for ch in channels:
        if ch.n_slots != n_slots:
            raise ValueError("cohort channels must share one slot count")
    arena: CohortArena | None = None
    if arena_factory is not None:
        arena = arena_factory(n_cols, n_slots, channels[0].mu)
        if arena is not None and (arena.n_cols != n_cols
                                  or arena.n_slots != n_slots):
            raise ValueError(
                f"arena shape ({arena.n_cols}, {arena.n_slots}) does not "
                f"match cohort ({n_cols}, {n_slots})")

    slot_types = _slot_types(cell, n_slots, direction)
    own_code = SLOT_DL if direction is SlotType.DL else SLOT_UL
    usable = (slot_types == own_code) | (slot_types == SLOT_SPECIAL)
    full_sym, special_sym = _usable_symbols(cell, direction)
    if special_sym == 0:
        usable &= slot_types != SLOT_SPECIAL
    special_mask = slot_types == SLOT_SPECIAL

    tbs_cache = _TbsCache(cell, max_layers, direction)
    rank_adapter = params.rank_adapter
    period = cell.cqi_period_slots
    n_periods_total = -(-n_slots // period) + 1
    n_periods = -(-n_slots // period)
    starts = np.arange(n_periods) * period

    # --- per-column pre-draws, in the exact per-session order ----------
    # Each column's generator is consumed identically to a lone
    # ``run_session`` call: uniforms, retx uniforms, CQI noise,
    # background series.  The measurement chain (measured SINR, CQI,
    # sustainable efficiency, grant quantization) evaluates per column
    # on the same 1-D arrays the per-session path sees, then stacks.
    bler = params.bler
    uniforms2 = np.empty((n_cols, n_slots))
    retx2 = np.empty((n_cols, n_slots))
    noise2 = np.empty((n_cols, n_periods_total))
    bg_raw2 = np.empty((n_cols, n_periods_total))
    # With an arena, the channel-state columns are written straight
    # into their final 2-D blocks (the stacked SINR tensor *is* the
    # arena's sinr_db column) — the flush never touches them again.
    if arena is not None:
        sinr2 = arena.columns["sinr_db"]
        rsrp_rows = arena.columns["rsrp_dbm"]
        rsrq_rows = arena.columns["rsrq_db"]
    else:
        sinr2 = np.empty((n_cols, n_slots))
        rsrp_rows = rsrq_rows = None
    meas_idx = np.maximum(starts - params.cqi_delay_slots, 0)
    for c, rng in enumerate(rngs):
        uniforms2[c] = rng.random(n_slots)
        retx2[c] = rng.random(n_slots)
        noise2[c] = rng.standard_normal(n_periods_total)
        bg_raw2[c] = rng.standard_normal(n_periods_total)
        sinr2[c] = channels[c].sinr_db
        if rsrp_rows is not None:
            rsrp_rows[c] = channels[c].rsrp_dbm
            rsrq_rows[c] = channels[c].rsrq_db
    # The measurement chain is elementwise (shannon/searchsorted/rint
    # chains), so one 2-D evaluation produces the exact per-column
    # values the per-session path computes on 1-D arrays.
    eff_cap2 = bler.capacity(sinr2)
    meas2 = sinr2[:, meas_idx] + params.cqi_noise_db * noise2[:, :n_periods]
    cqi2 = np.minimum(
        sinr_to_cqi(meas2, cell.cqi_table, alpha=params.cqi_alpha), CQI_MAX)
    background2 = np.clip(
        params.background_rb_mean
        + params.background_rb_sigma * bg_raw2[:, :n_periods],
        0.0, BACKGROUND_TRIM_MAX,
    )
    prb_scaled = np.rint(n_prb * (1.0 - background2)).astype(np.int64)
    prb_quant = np.maximum(
        _RB_QUANTUM,
        (_RB_QUANTUM * np.rint(prb_scaled / _RB_QUANTUM)).astype(np.int64),
    )
    prb2 = np.minimum(prb_quant, n_prb)

    # --- link-adaptation lookup structures ------------------------------
    is_qam256 = cell.max_modulation is Modulation.QAM256
    mcs_lut, eff_lut, mod_lut, n_max_mcs = _la_luts(cell)
    # Stack the TBS lookup matrices of every grant size the cohort uses,
    # padded on the family axis like the MCS tables: per period the
    # (tbs_full, tbs_special) pair is then one fancy gather over
    # (family, grant, mcs, layers) instead of per-column dict probes.
    distinct_prb = np.unique(prb2)
    tb_full = np.zeros((2, distinct_prb.size, n_max_mcs, max_layers),
                       dtype=np.int64)
    tb_special = np.zeros_like(tb_full)
    for fbi, family in enumerate(("primary", "fallback")):
        for g, grant in enumerate(distinct_prb.tolist()):
            full, special = tbs_cache.get(family, int(grant))
            tb_full[fbi, g, :full.shape[0]] = full
            tb_special[fbi, g, :special.shape[0]] = special
    prb_idx2 = np.searchsorted(distinct_prb, prb2)

    # --- shared per-slot structures --------------------------------------
    # Transmit patterns for the four (tbs_full, tbs_special) sign cases
    # (0=both, 1=full-only, 2=special-only, 3=none) with prefix sums;
    # list copies feed the pure-Python column runner without per-access
    # numpy scalar boxing.
    tx4 = np.zeros((4, n_slots), dtype=bool)
    tx4[0] = usable
    tx4[1] = usable & ~special_mask
    tx4[2] = usable & special_mask
    cum4 = np.zeros((4, n_slots + 1), dtype=np.int64)
    np.cumsum(tx4, axis=1, out=cum4[:, 1:])
    cum4_l = [row.tolist() for row in cum4]
    usable_l = usable.tolist()
    special_l = special_mask.tolist()

    # --- cross-column state ---------------------------------------------
    olla = Olla()
    olla_up, olla_down = olla.step_up, olla.step_down
    olla_lo, olla_hi = olla.min_offset, olla.max_offset
    olla_enabled = params.olla_enabled
    beta = params.rank_ewma_beta
    dci_fallback_cqi = params.dci_fallback_cqi
    adapter_max = rank_adapter.max_layers
    rtt = params.harq_rtt_slots
    scale = params.retx_error_scale
    max_attempts = params.max_attempts

    delta = np.zeros(n_cols)
    rank = np.ones(n_cols, dtype=np.int64)
    ewma = np.empty(n_cols)
    lanes = _CohortRetxLanes(n_cols, n_slots, usable, special_mask, cum4,
                             rtt, scale, max_attempts)
    cols: list[_Column | None] = [None] * n_cols

    decoded2 = np.empty((n_cols, n_slots), dtype=bool)
    p_err2 = np.empty((n_cols, period))
    notdec = np.empty((n_cols, period), dtype=bool)
    failm2 = np.empty((n_cols, period), dtype=bool)
    zero_off = np.zeros(n_cols, dtype=np.int64)

    # Period-major (contiguous per-period row) working layouts for the
    # loop; transposed to column-major once before flush.
    meas2t = np.ascontiguousarray(meas2.T)
    cqi2t = np.ascontiguousarray(cqi2.T)
    pidx2t = np.ascontiguousarray(prb_idx2.T)
    if is_qam256:
        fb2t = (cqi2t <= dci_fallback_cqi).view(np.int8).astype(np.int64)
        dci2t = 1 - fb2t
    else:
        fb2t = np.zeros((n_periods, n_cols), dtype=np.int64)
        dci2t = fb2t
    starts_l = starts.tolist()
    stops_l = np.minimum(starts + period, n_slots).tolist()
    # Per-case transmission counts of every period (prefix-sum diffs).
    percnt4 = cum4[:, stops_l] - cum4[:, starts_l]

    clean2t = np.zeros((n_periods, n_cols), dtype=bool)
    case2t = np.empty((n_periods, n_cols), dtype=np.int64)
    mcs2t = np.empty((n_periods, n_cols), dtype=np.int64)
    mod2t = np.empty((n_periods, n_cols), dtype=np.int64)
    lay2t = np.empty((n_periods, n_cols), dtype=np.int64)
    tbsf2t = np.empty((n_periods, n_cols), dtype=np.int64)
    tbss2t = np.empty((n_periods, n_cols), dtype=np.int64)

    one_minus_beta = 1.0 - beta
    # RankAdapter threshold scalars, precomputed exactly as the scalar
    # chain computes them per report.
    rank_steps = []
    for k, threshold in enumerate(rank_adapter.thresholds_db):
        candidate = k + 2
        if candidate > adapter_max:
            break
        eff_up = threshold + rank_adapter.bias_db
        rank_steps.append((candidate, eff_up,
                           eff_up - rank_adapter.hysteresis_db))
    layers_capped = adapter_max > max_layers
    empty_err: list = []

    dirty_cells = 0
    batched_cells = 0
    residual_cells = 0
    t_batched = 0.0
    t_residual = 0.0
    t_loop = time.perf_counter()
    for p in range(n_periods):
        start = starts_l[p]
        stop = stops_l[p]
        m = stop - start
        sl = slice(start, stop)

        # --- measurement report (vectorized across columns) -------------
        # Same IEEE op sequence per element as the scalar chain:
        # (1-beta)*ewma, beta*measured, add; threshold comparisons with
        # the precomputed scalars.
        measured = meas2t[p]
        if p == 0:
            ewma[:] = measured
        else:
            np.multiply(ewma, one_minus_beta, out=ewma)
            np.add(ewma, beta * measured, out=ewma)
        prev = rank
        cand_rank = np.ones(n_cols, dtype=np.int64)
        for candidate, eff_up, eff_keep in rank_steps:
            eff = np.where(prev >= candidate, eff_keep, eff_up)
            cand_rank = np.where(ewma >= eff, candidate, cand_rank)
        rank = np.minimum(cand_rank, adapter_max)
        layers = np.minimum(rank, max_layers) if layers_capped else rank

        cqi = cqi2t[p]
        fb = fb2t[p]
        offset = np.rint(delta).astype(np.int64) if olla_enabled else zero_off
        mcs = mcs_lut[fb, cqi, offset - _OFF_LO]
        eff_mcs = eff_lut[fb, mcs]
        mod = mod_lut[fb, mcs]
        lidx = layers - 1
        tbs_full = tb_full[fb, pidx2t[p], mcs, lidx]
        tbs_special = tb_special[fb, pidx2t[p], mcs, lidx]

        case = (tbs_full <= 0) * 2 + (tbs_special <= 0)
        case2t[p] = case
        mcs2t[p] = mcs
        mod2t[p] = mod
        lay2t[p] = layers
        tbsf2t[p] = tbs_full
        tbss2t[p] = tbs_special

        # --- decode outcomes: one 2-D BLER pass --------------------------
        p_err = bler.error_probability_given_capacity(
            eff_mcs[:, None], eff_cap2[:, sl], out=p_err2[:, :m])
        decoded = np.greater_equal(uniforms2[:, sl], p_err, out=decoded2[:, sl])

        # --- clean/dirty split -------------------------------------------
        failm = np.logical_and(tx4[:, sl][case],
                               np.logical_not(decoded, out=notdec[:, :m]),
                               out=failm2[:, :m])
        fail_any = failm.any(axis=1)
        cnt = percnt4[:, p][case]
        # Narrowed dirty predicate: a pending queue only dirties a
        # period its head can actually come due in — a backlog due
        # beyond ``stop`` leaves the whole period on the clean path.
        dirty = fail_any | (lanes.due[:, 0] < stop)
        clean = ~dirty
        clean2t[p] = clean
        acks = np.where(clean, cnt, 0)
        nacks = np.zeros(n_cols, dtype=np.int64)

        if dirty.any():
            dirty_cells += int(dirty.sum())
            # Tier split: the batched lanes take every dirty column
            # except genuinely pathological backlogs, whose round count
            # would stall the whole cohort's batched pass.
            residual = dirty & (lanes.n > _RESIDUAL_PENDING)
            bidx = np.flatnonzero(dirty & ~residual)
            if bidx.size:
                tb = time.perf_counter()
                a_b, n_b = lanes.run_period(
                    bidx, start, stop, failm[bidx], case[bidx],
                    tbs_full[bidx], tbs_special[bidx],
                    retx2, decoded2, p_err2,
                )
                acks[bidx] = a_b
                nacks[bidx] = n_b
                batched_cells += bidx.size
                t_batched += time.perf_counter() - tb
            if residual.any():
                tr = time.perf_counter()
                dci_p = dci2t[p]
                for c in np.flatnonzero(residual).tolist():
                    col = cols[c]
                    if col is None:
                        col = cols[c] = _Column(n_slots)
                        _COUNTERS["columns_touched_fallback"] += 1
                    col.heap = lanes.export_heap(c)
                    ci = int(case[c])
                    a, n = _run_column_period(
                        col, start, stop, tx4[ci], cum4_l[ci], usable_l,
                        special_l, decoded[c], p_err2[c], retx2[c],
                        (int(prb2[c, p]), int(mcs[c]), int(mod[c]),
                         int(layers[c]), int(cqi[c]), int(dci_p[c])),
                        int(tbs_full[c]), int(tbs_special[c]),
                        rtt, scale, max_attempts,
                        failm[c].nonzero()[0].tolist() if fail_any[c]
                        else empty_err,
                    )
                    acks[c] = a
                    nacks[c] = n
                    lanes.import_heap(c, col.heap)
                    residual_cells += 1
                t_residual += time.perf_counter() - tr

        if olla_enabled:
            np.add(delta, acks * olla_up, out=delta)
            np.subtract(delta, nacks * olla_down, out=delta)
            np.maximum(delta, olla_lo, out=delta)
            np.minimum(delta, olla_hi, out=delta)

    t_end = time.perf_counter()
    _COUNTERS["cohorts"] += 1
    _COUNTERS["columns"] += n_cols
    _COUNTERS["cells"] += n_cols * n_periods
    _COUNTERS["dirty_periods"] += dirty_cells
    _COUNTERS["batched_periods"] += batched_cells
    if batched_cells and _native.load_kernel() is not None:
        _COUNTERS["native_periods"] += batched_cells
    _COUNTERS["residual_periods"] += residual_cells
    _COUNTERS["slots"] += n_cols * n_slots
    _COUNTERS["seconds"] += t_end - t0
    _COUNTERS["predraw_s"] += t_loop - t0
    _COUNTERS["batched_s"] += t_batched
    _COUNTERS["residual_s"] += t_residual
    _COUNTERS["pass_s"] += (t_end - t_loop) - t_batched - t_residual

    # --- flush: one column trace at a time ------------------------------
    # Back to column-major so each column's per-period constants are a
    # contiguous row for the gathers below.
    case2 = np.ascontiguousarray(case2t.T)
    clean2 = np.ascontiguousarray(clean2t.T)
    mcs2 = np.ascontiguousarray(mcs2t.T)
    mod2 = np.ascontiguousarray(mod2t.T)
    lay2 = np.ascontiguousarray(lay2t.T)
    dci2 = np.ascontiguousarray(dci2t.T)
    tbsf2 = np.ascontiguousarray(tbsf2t.T)
    tbss2 = np.ascontiguousarray(tbss2t.T)
    col_slots = np.arange(n_slots)
    period_of_slot = col_slots // period
    t_lanes = time.perf_counter()
    inseg2 = lanes.committed_mask()
    events = lanes.events_by_column()
    tf = time.perf_counter()
    _COUNTERS["batched_s"] += tf - t_lanes
    if arena is not None:
        # --- arena output stage: one cohort-wide scatter -----------------
        # The same values the per-column loop below scatters one trace
        # at a time, written once across the whole (n_cols, n_slots)
        # block: the filled (clean-period + committed-segment) cells are
        # flattened into a single index vector and every column lands
        # with one fancy-index write over exactly those cells — the
        # buffer's untouched majority stays on its zero pages.  These
        # writes commit the period loop's results to their *final*
        # location (there is no later re-expansion), so they are charged
        # to ``pass_s`` — exactly like the pre-draw, which writes
        # sinr/rsrp/rsrq straight into the arena and is charged to
        # ``predraw_s``.  ``flush_s`` is left measuring what flushing
        # still costs with an arena: trace-view creation, the residual
        # fallback columns, and the CQI forward-fill.
        acols = arena.columns
        acols["slot_type"][:] = slot_types
        pos2 = period_of_slot
        case_slot2 = case2[:, pos2]
        tx_slot2 = tx4[case_slot2, col_slots]
        fill2 = clean2[:, pos2]
        if inseg2 is not None:
            fill2 |= inseg2
        tx_slot2 &= fill2
        flat_fill = np.flatnonzero(tx_slot2.reshape(-1))
        rows_f, slots_f = np.divmod(flat_fill, n_slots)
        pos_f = period_of_slot[slots_f]
        prb_f = prb2[rows_f, pos_f]
        tbs_f = np.where(special_mask[slots_f],
                         tbss2[rows_f, pos_f], tbsf2[rows_f, pos_f])
        ok_f = decoded2.reshape(-1)[flat_fill]
        for name, vals in (
            ("scheduled", True),
            ("n_prb", prb_f),
            ("n_re", prb_f * 12),
            ("mcs_index", mcs2[rows_f, pos_f]),
            ("modulation_order", mod2[rows_f, pos_f]),
            ("layers", lay2[rows_f, pos_f]),
            ("cqi", cqi2[rows_f, pos_f]),
            ("dci_format", dci2[rows_f, pos_f]),
            ("tbs_bits", tbs_f),
        ):
            acols[name].reshape(-1)[flat_fill] = vals
        # delivered_bits and error start on zero pages, so only the cells
        # that differ from zero need a write: delivered at decoded cells,
        # error at the (few) undecoded ones.
        acols["delivered_bits"].reshape(-1)[flat_fill[ok_f]] = tbs_f[ok_f]
        acols["error"].reshape(-1)[flat_fill[~ok_f]] = True
        t_fill = time.perf_counter()
        _COUNTERS["pass_s"] += t_fill - tf
        if events is not None:
            # Batched serve/deferral events as one flat scatter: event
            # slots are unique per column and disjoint from the masked
            # fill above, so write order does not matter.  These are the
            # retx lanes' outputs landing in place — charged to
            # ``batched_s`` with the rest of the lane work.
            ev_bounds, ev_slot, ev_tbs, ev_ok, ev_retx = events
            ev_col = np.repeat(np.arange(n_cols), np.diff(ev_bounds))
            flat = ev_col * n_slots + ev_slot
            posv = pos2[ev_slot]
            prb_e = prb2[ev_col, posv]
            for name, vals in (
                ("scheduled", True),
                ("n_prb", prb_e),
                ("n_re", prb_e * 12),
                ("mcs_index", mcs2[ev_col, posv]),
                ("modulation_order", mod2[ev_col, posv]),
                ("layers", lay2[ev_col, posv]),
                ("cqi", cqi2[ev_col, posv]),
                ("dci_format", dci2[ev_col, posv]),
                ("is_retx", ev_retx),
                ("tbs_bits", ev_tbs),
                ("delivered_bits", np.where(ev_ok, ev_tbs, 0)),
                ("error", ~ev_ok),
            ):
                acols[name].reshape(-1)[flat] = vals
        t_events = time.perf_counter()
        _COUNTERS["batched_s"] += t_events - t_fill
        traces = [arena.trace(c, metadata=metadatas[c]) for c in range(n_cols)]
        for c in range(n_cols):
            if cols[c] is not None:
                _flush_column(cols[c], traces[c], special_mask, decoded2[c])
        # Forward-fill CQI across the whole cohort — the exact per-row
        # equivalent of _forward_fill_cqi (integer ops, so vectorizing
        # across rows cannot perturb a single value).
        cqi_col = acols["cqi"]
        cmask = cqi_col > 0
        any_rows = cmask.any(axis=1)
        if any_rows.any():
            idx2 = np.multiply(cmask, col_slots, dtype=np.int64)
            np.maximum.accumulate(idx2, axis=1, out=idx2)
            filled2 = np.take_along_axis(cqi_col, idx2, axis=1)
            first = cmask.argmax(axis=1)
            firstval = cqi_col[np.arange(n_cols), first]
            np.copyto(filled2, firstval[:, None],
                      where=col_slots[None, :] < first[:, None])
            np.copyto(cqi_col, filled2, where=any_rows[:, None])
        t_end = time.perf_counter()
        _COUNTERS["seconds"] += t_end - tf
        _COUNTERS["flush_s"] += t_end - t_events
        yield from traces
        return
    _COUNTERS["flush_s"] += time.perf_counter() - tf
    for c in range(n_cols):
        t1 = time.perf_counter()
        trace = SlotTrace.empty(n_slots, mu=channels[c].mu, metadata=metadatas[c])
        trace.sinr_db[:] = channels[c].sinr_db
        trace.rsrp_dbm[:] = channels[c].rsrp_dbm
        trace.rsrq_db[:] = channels[c].rsrq_db
        trace.slot_type[:] = slot_types
        # Clean-period and batched committed-segment slots, bulk-filled
        # from the per-period constant tensors (disjoint from event and
        # residual-runner slots; every value equals what the per-session
        # flush writes there — clean slots all decoded, so the general
        # delivered/error formula degenerates to the clean fill).
        case_slot = case2[c][period_of_slot]
        tx_slot = tx4[case_slot, col_slots]
        fill_mask = clean2[c][period_of_slot]
        if inseg2 is not None:
            fill_mask = fill_mask | inseg2[c]
        idx = np.flatnonzero(tx_slot & fill_mask)
        if idx.size:
            pos = period_of_slot[idx]
            prb = prb2[c][pos]
            trace.fill(
                idx, scheduled=True, n_prb=prb, n_re=prb * 12,
                mcs_index=mcs2[c][pos], modulation_order=mod2[c][pos],
                layers=lay2[c][pos], cqi=cqi2[c][pos], dci_format=dci2[c][pos],
            )
            tbs_vec = np.where(special_mask[idx], tbss2[c][pos], tbsf2[c][pos])
            ok = decoded2[c][idx]
            trace.tbs_bits[idx] = tbs_vec
            trace.delivered_bits[idx] = np.where(ok, tbs_vec, 0)
            trace.error[idx] = ~ok
        if events is not None:
            # Batched serve/deferral events: same payloads the residual
            # runner buffers, with the period constants gathered via
            # period-of-slot instead of np.repeat over meta rows.
            ev_bounds, ev_slot, ev_tbs, ev_ok, ev_retx = events
            lo, hi = ev_bounds[c], ev_bounds[c + 1]
            if hi > lo:
                ridx = ev_slot[lo:hi]
                pos = period_of_slot[ridx]
                prb = prb2[c][pos]
                trace.fill(
                    ridx, scheduled=True, n_prb=prb, n_re=prb * 12,
                    mcs_index=mcs2[c][pos], modulation_order=mod2[c][pos],
                    layers=lay2[c][pos], cqi=cqi2[c][pos],
                    dci_format=dci2[c][pos],
                )
                rtbs = ev_tbs[lo:hi]
                rok = ev_ok[lo:hi]
                trace.is_retx[ridx] = ev_retx[lo:hi]
                trace.tbs_bits[ridx] = rtbs
                trace.delivered_bits[ridx] = np.where(rok, rtbs, 0)
                trace.error[ridx] = ~rok
        if cols[c] is not None:
            _flush_column(cols[c], trace, special_mask, decoded2[c])
        _forward_fill_cqi(trace)
        dt = time.perf_counter() - t1
        _COUNTERS["seconds"] += dt
        _COUNTERS["flush_s"] += dt
        yield trace


def simulate_downlink_cohort(
    cell: CellConfig,
    channels: Sequence[ChannelRealization],
    rngs: Sequence[np.random.Generator],
    params: SimParams | None = None,
    metadatas: Sequence[TraceMetadata] | None = None,
    arena_factory=None,
) -> Iterator[SlotTrace]:
    """Cohort counterpart of :func:`~repro.ran.simulator.simulate_downlink`.

    ``channels``/``rngs``/``metadatas`` are per-column (one session per
    entry, cohort order = manifest order); each ``rngs[c]`` must be
    positioned exactly where the per-session path would hand it to
    ``simulate_downlink``.  Returns a lazy generator of one byte-identical
    trace per column.  ``arena_factory`` (see
    :func:`_simulate_direction_cohort`) switches the flush to cohort-wide
    2-D writes into a :class:`~repro.xcal.arena.CohortArena`.
    """
    params = params or SimParams()
    if metadatas is None:
        metadatas = [TraceMetadata(
            carrier_name=cell.name, direction="DL",
            bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
        ) for _ in channels]
    if not (len(channels) == len(rngs) == len(metadatas)) or not channels:
        raise ValueError("cohort needs matching, non-empty channels/rngs/metadatas")
    return _simulate_direction_cohort(
        cell, channels, SlotType.DL, rngs, params,
        max_layers=cell.max_layers, n_prb=cell.grantable_rb, metadatas=metadatas,
        arena_factory=arena_factory,
    )


def simulate_uplink_cohort(
    cell: CellConfig,
    channels: Sequence[ChannelRealization],
    rngs: Sequence[np.random.Generator],
    params: SimParams | None = None,
    max_layers: int = 2,
    metadatas: Sequence[TraceMetadata] | None = None,
    arena_factory=None,
) -> Iterator[SlotTrace]:
    """Cohort counterpart of :func:`~repro.ran.simulator.simulate_uplink`."""
    params = params or SimParams()
    if metadatas is None:
        metadatas = [TraceMetadata(
            carrier_name=cell.name, direction="UL",
            bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
        ) for _ in channels]
    if not (len(channels) == len(rngs) == len(metadatas)) or not channels:
        raise ValueError("cohort needs matching, non-empty channels/rngs/metadatas")
    ul_cell = replace(cell, max_modulation=Modulation.QAM64) \
        if cell.max_modulation is not Modulation.QAM64 else cell
    return _simulate_direction_cohort(
        ul_cell, channels, SlotType.UL, rngs, params,
        max_layers=min(max_layers, cell.max_layers), n_prb=cell.grantable_rb,
        metadatas=metadatas, arena_factory=arena_factory,
    )
