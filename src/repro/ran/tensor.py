"""Cross-session cohort tensor engine.

Campaign manifests expand into thousands of sessions that differ only
in their derived seed: same operator profile, same duration, same
engine-relevant configuration.  The per-session engines in
:mod:`repro.ran.simulator` pay the full Python/numpy dispatch cost of
the link-adaptation loop once per session; at campaign scale that
dispatch — not the arithmetic — dominates.

This module runs a whole *cohort* of same-shape sessions as one
``(sessions x slots)`` tensor pass:

- **Per-column randomness** is pre-drawn from each session's own
  generator in exactly the order the per-session path draws it, so
  every column consumes its RNG identically by construction.
- **Link adaptation is vectorized across the sessions axis**: the rank
  EWMA/hysteresis chain, the OLLA offset update, the CQI->MCS mapping
  and the TBS resolution run through dense family-padded lookup tables
  — one fancy gather per quantity per period — with elementwise
  float64/integer ops whose IEEE semantics match the per-session
  scalar chain op for op.
- **Decode outcomes evaluate as one 2-D BLER pass per CQI period** —
  the same in-place ufunc sequence the per-session path runs on a 1-D
  slice, which numpy evaluates bit-identically on 2-D views.
- **Clean periods collapse to bookkeeping**: a (column, period) cell
  with no pending HARQ retransmission and no failed transmission needs
  no per-slot work at all — its ACK count is a prefix-sum difference
  and its trace slots are bulk-filled from per-period constants at
  flush time.  Dirty cells — where retx windows diverge between
  columns — fall back per column to :func:`_run_column_period`, a
  flattened transliteration of the segment-batched
  ``_VectorizedEngine.run_period`` / ``_fallback_slot`` pair: the same
  control flow and the same float operations, but with heap and
  segment state in locals and one tuple append per committed segment,
  so a dirty cell costs a fraction of a full per-session period.  The
  equivalence-matrix tests pin this transliteration byte-for-byte to
  the ``engine="reference"`` oracle.

Traces are flushed one column at a time (``simulate_*_cohort`` return
lazy generators), so a reducing consumer folds each session's sketch
straight out of the tensor state with a single column trace live at a
time instead of materializing the whole cohort.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Iterator, Sequence

import numpy as np

from repro.channel.model import ChannelRealization
from repro.nr.cqi import CQI_MAX
from repro.nr.mcs import Modulation
from repro.nr.signal import sinr_to_cqi
from repro.nr.tdd import SlotType
from repro.ran.amc import Olla
from repro.ran.config import CellConfig
from repro.ran.simulator import (BACKGROUND_TRIM_MAX, SLOT_DL, SLOT_SPECIAL,
                                 SLOT_UL, SimParams, _mappers, _RB_QUANTUM,
                                 _slot_types, _TbsCache, _usable_symbols,
                                 _forward_fill_cqi, replace)
from repro.xcal.records import SlotTrace, TraceMetadata

__all__ = [
    "cohort_stats",
    "render_cohort_stats",
    "reset_cohort_stats",
    "simulate_downlink_cohort",
    "simulate_uplink_cohort",
]


# ---------------------------------------------------------------------- #
# Cohort-path counters (surfaced by ``repro cache stats``)
# ---------------------------------------------------------------------- #
_COUNTERS = {
    "cohorts": 0,            # tensor passes run in this process
    "columns": 0,            # sessions executed through a tensor pass
    "columns_fallback": 0,   # columns that needed the per-column runner
    "dirty_periods": 0,      # (column, period) cells run via fallback
    "slots": 0,              # column-slots processed by tensor passes
    "seconds": 0.0,          # wall time inside tensor passes
}


def cohort_stats() -> dict:
    """Counters of the cohort tensor path in this process.

    ``columns_fallback`` counts columns evicted from the pure tensor
    path at least once (a diverging retx window instantiated their
    per-column state); ``slots``/``seconds`` give tensor slots/s.
    """
    return dict(_COUNTERS)


def reset_cohort_stats() -> None:
    for key in _COUNTERS:
        _COUNTERS[key] = 0.0 if key == "seconds" else 0


def render_cohort_stats() -> str:
    """One-line summary, shaped like the TBS cache line."""
    s = cohort_stats()
    rate = s["slots"] / s["seconds"] if s["seconds"] > 0 else 0.0
    return (f"tensor cohorts={s['cohorts']} columns={s['columns']} "
            f"fallback_columns={s['columns_fallback']} "
            f"dirty_periods={s['dirty_periods']} "
            f"slots_per_s={rate:,.0f}")


# ---------------------------------------------------------------------- #
# Dense link-adaptation lookup tables
# ---------------------------------------------------------------------- #
# CQI->MCS through the vendor mapper is a pure function of
# (fallback?, cqi, olla offset); the offset is bounded by the Olla
# clamp, so the whole map densifies into one integer LUT per carrier
# family.  Cached process-wide: every cohort on a carrier reuses it.
_MCS_LUT_CACHE: dict = {}

#: Integer OLLA offset bounds (``Olla`` is always constructed with
#: defaults by the simulation loop; the offset is ``round(delta)`` of a
#: delta clamped to these bounds).
_OFF_LO = int(round(Olla().min_offset))
_OFF_HI = int(round(Olla().max_offset))


def _la_luts(cell: CellConfig):
    """(mcs_lut, eff_lut, mod_lut, n_max) for a carrier.

    ``mcs_lut[fb, cqi, offset - _OFF_LO]`` is the MCS index the mapper
    returns; ``eff_lut[fb, mcs]`` / ``mod_lut[fb, mcs]`` the entry's
    spectral efficiency and modulation order.  The family axis is
    0=primary, 1=DCI 1_0 fallback; the MCS axis pads to the longer
    table so both families gather through one fancy index — padding is
    never read, because an MCS index is only ever paired with the
    family whose mapper produced it.
    """
    key = (cell.max_modulation, cell.mapping_policy, cell.band_name)
    cached = _MCS_LUT_CACHE.get(key)
    if cached is not None:
        return cached
    mappers = _mappers(cell)
    n_off = _OFF_HI - _OFF_LO + 1
    n_max = max(len(m.mcs_table) for m in mappers)
    mcs_lut = np.zeros((2, CQI_MAX + 1, n_off), dtype=np.int64)
    eff_lut = np.zeros((2, n_max))
    mod_lut = np.zeros((2, n_max), dtype=np.int64)
    for fb, mapper in enumerate(mappers):
        table = mapper.mcs_table
        for cqi in range(CQI_MAX + 1):
            for j, offset in enumerate(range(_OFF_LO, _OFF_HI + 1)):
                mcs_lut[fb, cqi, j] = mapper.mcs_for_cqi(cqi, olla_offset=offset)
        for m, entry in enumerate(table):
            eff_lut[fb, m] = entry.spectral_efficiency
            mod_lut[fb, m] = entry.modulation.bits_per_symbol
    cached = (mcs_lut, eff_lut, mod_lut, n_max)
    _MCS_LUT_CACHE[key] = cached
    return cached


# ---------------------------------------------------------------------- #
# Per-column fallback state and runner
# ---------------------------------------------------------------------- #
class _Column:
    """Divergent-column state: HARQ heap plus buffered trace writes.

    Created lazily on a column's first dirty period.  ``heap`` holds
    ``(due_slot, seq, tbs_bits, attempts, p_hint)`` tuples exactly like
    :class:`~repro.ran.simulator._RetxQueue`.  Because the per-period
    grant constants cannot change inside a period, buffered trace
    writes are split into slim varying tuples plus one meta row per
    dirty period: ``chunks`` holds ``(committed_count, prb, mcs, mod,
    layers, cqi, dci, tbs_full, tbs_special)`` per period with fast
    segments, ``events`` holds ``(slot, tbs, ok, is_retx)`` per
    fallback slot and ``evmeta`` ``(n_events, prb, mcs, mod, layers,
    cqi, dci)`` per period that produced any — the flush re-expands
    the constants with ``np.repeat``, yielding the exact payloads the
    per-session engine buffers.
    """

    __slots__ = ("heap", "seq", "txmask", "chunks", "events", "evmeta")

    def __init__(self, n_slots: int):
        self.heap: list[tuple] = []
        self.seq = 0
        self.txmask = np.zeros(n_slots, dtype=bool)
        self.chunks: list[tuple] = []
        self.events: list[tuple] = []
        self.evmeta: list[tuple] = []


def _run_column_period(col: _Column, start: int, stop: int,
                       tx: np.ndarray, cum: list, usable: list, special: list,
                       decoded, p_err, retx_u: np.ndarray,
                       consts: tuple, tbs_full: int, tbs_special: int,
                       rtt: int, scale: float, max_attempts: int,
                       err_pos: list,
                       heappop=heappop, heappush=heappush) -> tuple[int, int]:
    """One dirty (column, period) cell with exact engine semantics.

    A flattened transliteration of ``_VectorizedEngine.run_period`` +
    ``_fallback_slot``: identical control flow and float operations,
    but heap/segment state lives in locals and each committed segment
    appends one tuple instead of nine list entries.  ``err_pos``
    carries the period-relative fresh-NACK candidate positions
    (``tx & ~decoded``), precomputed by the caller from the cohort
    decode tensor; ``cum``/``usable``/``special`` arrive as plain
    lists so the hot loop never boxes numpy scalars.
    """
    heap = col.heap
    seq = col.seq
    events = col.events
    e0 = len(events)
    acks = 0
    nacks = 0
    i = start

    if tbs_full <= 0 and tbs_special <= 0:
        # Nothing transmittable this period; only due retransmissions
        # can occupy slots (a deferred retx would hand the slot to new
        # data, which this period cannot carry).
        while i < stop:
            if heap and heap[0][0] <= i and usable[i]:
                if not (special[i] and heap[0][2] > tbs_special):
                    _due, _seq, tbs, attempts, p_hint = heappop(heap)
                    p_retx = p_hint * scale
                    ok = retx_u[i] >= (p_retx if p_retx < 1.0 else 1.0)
                    events.append((i, tbs, ok, True))
                    if not ok and attempts + 1 < max_attempts:
                        heappush(heap, (i + rtt, seq, tbs, attempts + 1, p_hint))
                        seq += 1
            i += 1
        col.seq = seq
        n_ev = len(events) - e0
        if n_ev:
            col.evmeta.append((n_ev,) + consts)
        return 0, 0

    uniform_tbs = tbs_special == tbs_full
    n_err = len(err_pos)
    e = 0
    committed = 0
    txmask = col.txmask
    while i < stop:
        if heap and heap[0][0] <= i:
            # Retransmission window: per-slot fallback until the due
            # block is served (or deferred past a special slot that
            # cannot carry it).
            if usable[i]:
                is_special = special[i]
                if not (is_special and heap[0][2] > tbs_special):
                    _due, _seq, tbs, attempts, p_hint = heappop(heap)
                    p_retx = p_hint * scale
                    ok = retx_u[i] >= (p_retx if p_retx < 1.0 else 1.0)
                    events.append((i, tbs, ok, True))
                    if not ok and attempts + 1 < max_attempts:
                        heappush(heap, (i + rtt, seq, tbs, attempts + 1, p_hint))
                        seq += 1
                else:
                    # Deferral: the special slot carries new data instead.
                    tbs = tbs_special if is_special else tbs_full
                    if tbs > 0:
                        j = i - start
                        ok = decoded[j]
                        events.append((i, tbs, ok, False))
                        if ok:
                            acks += 1
                        else:
                            heappush(heap, (i + rtt, seq, tbs, 1,
                                            float(p_err[j])))
                            seq += 1
                            nacks += 1
            i += 1
            # The fallback owned that position — drop any fresh-NACK
            # candidate there (a served retx displaced the new data; a
            # fallback new transmission already queued its own NACK).
            while e < n_err and err_pos[e] < i - start:
                e += 1
            continue
        if not heap:
            seg_end = stop
        else:
            h0 = heap[0][0]
            seg_end = stop if h0 >= stop else h0
        # The first fresh NACK inside the segment re-arms the queue
        # rtt slots later; the segment cannot extend past that.
        if e < n_err:
            first = start + err_pos[e]
            if first < seg_end and first + rtt < seg_end:
                seg_end = first + rtt
        j1 = seg_end - start
        # Queue every fresh NACK in the committed range, slot order:
        # their due slots all lie at or beyond seg_end.
        seg_nacks = 0
        while e < n_err and (pos := err_pos[e]) < j1:
            if uniform_tbs or not special[start + pos]:
                tbs = tbs_full
            else:
                tbs = tbs_special
            heappush(heap, (start + pos + rtt, seq, tbs, 1, float(p_err[pos])))
            seq += 1
            e += 1
            seg_nacks += 1
        nacks += seg_nacks
        txmask[i:seg_end] = tx[i:seg_end]
        cnt = cum[seg_end] - cum[i]
        acks += cnt - seg_nacks
        committed += cnt
        i = seg_end
    col.seq = seq
    # One meta row per period: every fast segment and fallback event in
    # this call shares the same grant constants, so the per-segment /
    # per-event tuples the engine buffers collapse losslessly.
    if committed:
        col.chunks.append((committed,) + consts + (tbs_full, tbs_special))
    n_ev = len(events) - e0
    if n_ev:
        col.evmeta.append((n_ev,) + consts)
    return acks, nacks


def _flush_column(col: _Column, trace: SlotTrace, special_mask: np.ndarray,
                  decoded: np.ndarray) -> None:
    """Materialize a divergent column's buffered slots into its trace —
    the same bulk writes as ``_VectorizedEngine.flush``, reading decode
    outcomes straight from the column's row of the cohort tensor."""
    idx = np.flatnonzero(col.txmask)
    if idx.size:
        # One bulk conversion of the per-period chunk rows; txmask
        # slots are in slot order and each period's committed count is
        # row 0, so np.repeat re-expands the constants in exact
        # per-slot alignment with ``idx``.
        ch = np.array(col.chunks, dtype=np.int64)
        counts = ch[:, 0]

        def rep(k: int) -> np.ndarray:
            return np.repeat(ch[:, k], counts)

        prb = rep(1)
        trace.fill(
            idx, scheduled=True, n_prb=prb, n_re=prb * 12,
            mcs_index=rep(2), modulation_order=rep(3),
            layers=rep(4), cqi=rep(5), dci_format=rep(6),
        )
        tbs_vec = np.where(special_mask[idx], rep(8), rep(7))
        ok = decoded[idx]
        trace.tbs_bits[idx] = tbs_vec
        trace.delivered_bits[idx] = np.where(ok, tbs_vec, 0)
        trace.error[idx] = ~ok
    if col.events:
        # Slim (slot, tbs, ok, is_retx) tuples plus one meta row per
        # producing period; booleans round-trip through int64 exactly.
        ev = np.array(col.events, dtype=np.int64)
        em = np.array(col.evmeta, dtype=np.int64)
        n_ev = em[:, 0]

        def repe(k: int) -> np.ndarray:
            return np.repeat(em[:, k], n_ev)

        ridx = ev[:, 0]
        rtbs = ev[:, 1]
        rok = ev[:, 2].astype(bool)
        rprb = repe(1)
        trace.fill(
            ridx, scheduled=True, n_prb=rprb, n_re=rprb * 12,
            mcs_index=repe(2), modulation_order=repe(3),
            layers=repe(4), cqi=repe(5), dci_format=repe(6),
        )
        trace.is_retx[ridx] = ev[:, 3].astype(bool)
        trace.tbs_bits[ridx] = rtbs
        trace.delivered_bits[ridx] = np.where(rok, rtbs, 0)
        trace.error[ridx] = ~rok


# ---------------------------------------------------------------------- #
# The tensor pass
# ---------------------------------------------------------------------- #
def _simulate_direction_cohort(
    cell: CellConfig,
    channels: Sequence[ChannelRealization],
    direction: SlotType,
    rngs: Sequence[np.random.Generator],
    params: SimParams,
    max_layers: int,
    n_prb: int,
    metadatas: Sequence[TraceMetadata],
) -> Iterator[SlotTrace]:
    """Cohort counterpart of ``_simulate_direction`` (lazy, one trace
    yielded per column in cohort order)."""
    t0 = time.perf_counter()
    n_cols = len(channels)
    n_slots = channels[0].n_slots
    for ch in channels:
        if ch.n_slots != n_slots:
            raise ValueError("cohort channels must share one slot count")

    slot_types = _slot_types(cell, n_slots, direction)
    own_code = SLOT_DL if direction is SlotType.DL else SLOT_UL
    usable = (slot_types == own_code) | (slot_types == SLOT_SPECIAL)
    full_sym, special_sym = _usable_symbols(cell, direction)
    if special_sym == 0:
        usable &= slot_types != SLOT_SPECIAL
    special_mask = slot_types == SLOT_SPECIAL

    tbs_cache = _TbsCache(cell, max_layers, direction)
    rank_adapter = params.rank_adapter
    period = cell.cqi_period_slots
    n_periods_total = -(-n_slots // period) + 1
    n_periods = -(-n_slots // period)
    starts = np.arange(n_periods) * period

    # --- per-column pre-draws, in the exact per-session order ----------
    # Each column's generator is consumed identically to a lone
    # ``run_session`` call: uniforms, retx uniforms, CQI noise,
    # background series.  The measurement chain (measured SINR, CQI,
    # sustainable efficiency, grant quantization) evaluates per column
    # on the same 1-D arrays the per-session path sees, then stacks.
    bler = params.bler
    uniforms2 = np.empty((n_cols, n_slots))
    retx_rows: list[np.ndarray] = []
    noise2 = np.empty((n_cols, n_periods_total))
    bg_raw2 = np.empty((n_cols, n_periods_total))
    sinr2 = np.empty((n_cols, n_slots))
    meas_idx = np.maximum(starts - params.cqi_delay_slots, 0)
    for c, rng in enumerate(rngs):
        uniforms2[c] = rng.random(n_slots)
        retx_rows.append(rng.random(n_slots))
        noise2[c] = rng.standard_normal(n_periods_total)
        bg_raw2[c] = rng.standard_normal(n_periods_total)
        sinr2[c] = channels[c].sinr_db
    # The measurement chain is elementwise (shannon/searchsorted/rint
    # chains), so one 2-D evaluation produces the exact per-column
    # values the per-session path computes on 1-D arrays.
    eff_cap2 = bler.capacity(sinr2)
    meas2 = sinr2[:, meas_idx] + params.cqi_noise_db * noise2[:, :n_periods]
    cqi2 = np.minimum(
        sinr_to_cqi(meas2, cell.cqi_table, alpha=params.cqi_alpha), CQI_MAX)
    background2 = np.clip(
        params.background_rb_mean
        + params.background_rb_sigma * bg_raw2[:, :n_periods],
        0.0, BACKGROUND_TRIM_MAX,
    )
    prb_scaled = np.rint(n_prb * (1.0 - background2)).astype(np.int64)
    prb_quant = np.maximum(
        _RB_QUANTUM,
        (_RB_QUANTUM * np.rint(prb_scaled / _RB_QUANTUM)).astype(np.int64),
    )
    prb2 = np.minimum(prb_quant, n_prb)

    # --- link-adaptation lookup structures ------------------------------
    is_qam256 = cell.max_modulation is Modulation.QAM256
    mcs_lut, eff_lut, mod_lut, n_max_mcs = _la_luts(cell)
    # Stack the TBS lookup matrices of every grant size the cohort uses,
    # padded on the family axis like the MCS tables: per period the
    # (tbs_full, tbs_special) pair is then one fancy gather over
    # (family, grant, mcs, layers) instead of per-column dict probes.
    distinct_prb = np.unique(prb2)
    tb_full = np.zeros((2, distinct_prb.size, n_max_mcs, max_layers),
                       dtype=np.int64)
    tb_special = np.zeros_like(tb_full)
    for fbi, family in enumerate(("primary", "fallback")):
        for g, grant in enumerate(distinct_prb.tolist()):
            full, special = tbs_cache.get(family, int(grant))
            tb_full[fbi, g, :full.shape[0]] = full
            tb_special[fbi, g, :special.shape[0]] = special
    prb_idx2 = np.searchsorted(distinct_prb, prb2)

    # --- shared per-slot structures --------------------------------------
    # Transmit patterns for the four (tbs_full, tbs_special) sign cases
    # (0=both, 1=full-only, 2=special-only, 3=none) with prefix sums;
    # list copies feed the pure-Python column runner without per-access
    # numpy scalar boxing.
    tx4 = np.zeros((4, n_slots), dtype=bool)
    tx4[0] = usable
    tx4[1] = usable & ~special_mask
    tx4[2] = usable & special_mask
    cum4 = np.zeros((4, n_slots + 1), dtype=np.int64)
    np.cumsum(tx4, axis=1, out=cum4[:, 1:])
    cum4_l = [row.tolist() for row in cum4]
    usable_l = usable.tolist()
    special_l = special_mask.tolist()

    # --- cross-column state ---------------------------------------------
    olla = Olla()
    olla_up, olla_down = olla.step_up, olla.step_down
    olla_lo, olla_hi = olla.min_offset, olla.max_offset
    olla_enabled = params.olla_enabled
    beta = params.rank_ewma_beta
    dci_fallback_cqi = params.dci_fallback_cqi
    adapter_max = rank_adapter.max_layers
    rtt = params.harq_rtt_slots
    scale = params.retx_error_scale
    max_attempts = params.max_attempts

    delta = np.zeros(n_cols)
    rank = np.ones(n_cols, dtype=np.int64)
    ewma = np.empty(n_cols)
    queue_active = np.zeros(n_cols, dtype=bool)
    cols: list[_Column | None] = [None] * n_cols

    decoded2 = np.empty((n_cols, n_slots), dtype=bool)
    p_err2 = np.empty((n_cols, period))
    notdec = np.empty((n_cols, period), dtype=bool)
    failm2 = np.empty((n_cols, period), dtype=bool)
    zero_off = np.zeros(n_cols, dtype=np.int64)

    # Period-major (contiguous per-period row) working layouts for the
    # loop; transposed to column-major once before flush.
    meas2t = np.ascontiguousarray(meas2.T)
    cqi2t = np.ascontiguousarray(cqi2.T)
    pidx2t = np.ascontiguousarray(prb_idx2.T)
    if is_qam256:
        fb2t = (cqi2t <= dci_fallback_cqi).view(np.int8).astype(np.int64)
        dci2t = 1 - fb2t
    else:
        fb2t = np.zeros((n_periods, n_cols), dtype=np.int64)
        dci2t = fb2t
    starts_l = starts.tolist()
    stops_l = np.minimum(starts + period, n_slots).tolist()
    # Per-case transmission counts of every period (prefix-sum diffs).
    percnt4 = cum4[:, stops_l] - cum4[:, starts_l]

    clean2t = np.zeros((n_periods, n_cols), dtype=bool)
    case2t = np.empty((n_periods, n_cols), dtype=np.int64)
    mcs2t = np.empty((n_periods, n_cols), dtype=np.int64)
    mod2t = np.empty((n_periods, n_cols), dtype=np.int64)
    lay2t = np.empty((n_periods, n_cols), dtype=np.int64)
    tbsf2t = np.empty((n_periods, n_cols), dtype=np.int64)
    tbss2t = np.empty((n_periods, n_cols), dtype=np.int64)

    one_minus_beta = 1.0 - beta
    # RankAdapter threshold scalars, precomputed exactly as the scalar
    # chain computes them per report.
    rank_steps = []
    for k, threshold in enumerate(rank_adapter.thresholds_db):
        candidate = k + 2
        if candidate > adapter_max:
            break
        eff_up = threshold + rank_adapter.bias_db
        rank_steps.append((candidate, eff_up,
                           eff_up - rank_adapter.hysteresis_db))
    layers_capped = adapter_max > max_layers
    empty_err: list = []

    dirty_cells = 0
    for p in range(n_periods):
        start = starts_l[p]
        stop = stops_l[p]
        m = stop - start
        sl = slice(start, stop)

        # --- measurement report (vectorized across columns) -------------
        # Same IEEE op sequence per element as the scalar chain:
        # (1-beta)*ewma, beta*measured, add; threshold comparisons with
        # the precomputed scalars.
        measured = meas2t[p]
        if p == 0:
            ewma[:] = measured
        else:
            np.multiply(ewma, one_minus_beta, out=ewma)
            np.add(ewma, beta * measured, out=ewma)
        prev = rank
        cand_rank = np.ones(n_cols, dtype=np.int64)
        for candidate, eff_up, eff_keep in rank_steps:
            eff = np.where(prev >= candidate, eff_keep, eff_up)
            cand_rank = np.where(ewma >= eff, candidate, cand_rank)
        rank = np.minimum(cand_rank, adapter_max)
        layers = np.minimum(rank, max_layers) if layers_capped else rank

        cqi = cqi2t[p]
        fb = fb2t[p]
        offset = np.rint(delta).astype(np.int64) if olla_enabled else zero_off
        mcs = mcs_lut[fb, cqi, offset - _OFF_LO]
        eff_mcs = eff_lut[fb, mcs]
        mod = mod_lut[fb, mcs]
        lidx = layers - 1
        tbs_full = tb_full[fb, pidx2t[p], mcs, lidx]
        tbs_special = tb_special[fb, pidx2t[p], mcs, lidx]

        case = (tbs_full <= 0) * 2 + (tbs_special <= 0)
        case2t[p] = case
        mcs2t[p] = mcs
        mod2t[p] = mod
        lay2t[p] = layers
        tbsf2t[p] = tbs_full
        tbss2t[p] = tbs_special

        # --- decode outcomes: one 2-D BLER pass --------------------------
        p_err = bler.error_probability_given_capacity(
            eff_mcs[:, None], eff_cap2[:, sl], out=p_err2[:, :m])
        decoded = np.greater_equal(uniforms2[:, sl], p_err, out=decoded2[:, sl])

        # --- clean/dirty split -------------------------------------------
        failm = np.logical_and(tx4[:, sl][case],
                               np.logical_not(decoded, out=notdec[:, :m]),
                               out=failm2[:, :m])
        fail_any = failm.any(axis=1)
        cnt = percnt4[:, p][case]
        dirty = queue_active | fail_any
        clean = ~dirty
        clean2t[p] = clean
        acks = np.where(clean, cnt, 0)
        nacks = np.zeros(n_cols, dtype=np.int64)

        if dirty.any():
            dirty_idx = np.flatnonzero(dirty).tolist()
            dirty_cells += len(dirty_idx)
            fail_l = fail_any.tolist()
            prb_l = prb2[:, p].tolist()
            mcs_l = mcs.tolist()
            mod_l = mod.tolist()
            lay_l = layers.tolist()
            cqi_l = cqi.tolist()
            dci_l = dci2t[p].tolist()
            tbsf_l = tbs_full.tolist()
            tbss_l = tbs_special.tolist()
            case_l = case.tolist()
            for c in dirty_idx:
                col = cols[c]
                if col is None:
                    col = cols[c] = _Column(n_slots)
                    _COUNTERS["columns_fallback"] += 1
                ci = case_l[c]
                a, n = _run_column_period(
                    col, start, stop, tx4[ci], cum4_l[ci], usable_l, special_l,
                    decoded[c], p_err2[c], retx_rows[c],
                    (prb_l[c], mcs_l[c], mod_l[c], lay_l[c], cqi_l[c],
                     dci_l[c]),
                    tbsf_l[c], tbss_l[c], rtt, scale, max_attempts,
                    failm[c].nonzero()[0].tolist() if fail_l[c] else empty_err,
                )
                acks[c] = a
                nacks[c] = n
                queue_active[c] = bool(col.heap)

        if olla_enabled:
            np.add(delta, acks * olla_up, out=delta)
            np.subtract(delta, nacks * olla_down, out=delta)
            np.maximum(delta, olla_lo, out=delta)
            np.minimum(delta, olla_hi, out=delta)

    _COUNTERS["cohorts"] += 1
    _COUNTERS["columns"] += n_cols
    _COUNTERS["dirty_periods"] += dirty_cells
    _COUNTERS["slots"] += n_cols * n_slots
    _COUNTERS["seconds"] += time.perf_counter() - t0

    # --- flush: one column trace at a time ------------------------------
    # Back to column-major so each column's per-period constants are a
    # contiguous row for the gathers below.
    case2 = np.ascontiguousarray(case2t.T)
    clean2 = np.ascontiguousarray(clean2t.T)
    mcs2 = np.ascontiguousarray(mcs2t.T)
    mod2 = np.ascontiguousarray(mod2t.T)
    lay2 = np.ascontiguousarray(lay2t.T)
    dci2 = np.ascontiguousarray(dci2t.T)
    tbsf2 = np.ascontiguousarray(tbsf2t.T)
    tbss2 = np.ascontiguousarray(tbss2t.T)
    col_slots = np.arange(n_slots)
    period_of_slot = col_slots // period
    for c in range(n_cols):
        t1 = time.perf_counter()
        trace = SlotTrace.empty(n_slots, mu=channels[c].mu, metadata=metadatas[c])
        trace.sinr_db[:] = channels[c].sinr_db
        trace.rsrp_dbm[:] = channels[c].rsrp_dbm
        trace.rsrq_db[:] = channels[c].rsrq_db
        trace.slot_type[:] = slot_types
        # Clean-period fast-path slots, bulk-filled from the per-period
        # constant tensors (disjoint from the fallback runner's slots;
        # every value equals what the per-session flush writes there).
        case_slot = case2[c][period_of_slot]
        tx_slot = tx4[case_slot, col_slots]
        idx = np.flatnonzero(tx_slot & clean2[c][period_of_slot])
        if idx.size:
            pos = period_of_slot[idx]
            prb = prb2[c][pos]
            trace.fill(
                idx, scheduled=True, n_prb=prb, n_re=prb * 12,
                mcs_index=mcs2[c][pos], modulation_order=mod2[c][pos],
                layers=lay2[c][pos], cqi=cqi2[c][pos], dci_format=dci2[c][pos],
            )
            tbs_vec = np.where(special_mask[idx], tbss2[c][pos], tbsf2[c][pos])
            trace.tbs_bits[idx] = tbs_vec
            # Clean periods have no failed transmission by definition:
            # everything scheduled delivered, ``error`` stays False.
            trace.delivered_bits[idx] = tbs_vec
        if cols[c] is not None:
            _flush_column(cols[c], trace, special_mask, decoded2[c])
        _forward_fill_cqi(trace)
        _COUNTERS["seconds"] += time.perf_counter() - t1
        yield trace


def simulate_downlink_cohort(
    cell: CellConfig,
    channels: Sequence[ChannelRealization],
    rngs: Sequence[np.random.Generator],
    params: SimParams | None = None,
    metadatas: Sequence[TraceMetadata] | None = None,
) -> Iterator[SlotTrace]:
    """Cohort counterpart of :func:`~repro.ran.simulator.simulate_downlink`.

    ``channels``/``rngs``/``metadatas`` are per-column (one session per
    entry, cohort order = manifest order); each ``rngs[c]`` must be
    positioned exactly where the per-session path would hand it to
    ``simulate_downlink``.  Returns a lazy generator of one byte-identical
    trace per column.
    """
    params = params or SimParams()
    if metadatas is None:
        metadatas = [TraceMetadata(
            carrier_name=cell.name, direction="DL",
            bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
        ) for _ in channels]
    if not (len(channels) == len(rngs) == len(metadatas)) or not channels:
        raise ValueError("cohort needs matching, non-empty channels/rngs/metadatas")
    return _simulate_direction_cohort(
        cell, channels, SlotType.DL, rngs, params,
        max_layers=cell.max_layers, n_prb=cell.grantable_rb, metadatas=metadatas,
    )


def simulate_uplink_cohort(
    cell: CellConfig,
    channels: Sequence[ChannelRealization],
    rngs: Sequence[np.random.Generator],
    params: SimParams | None = None,
    max_layers: int = 2,
    metadatas: Sequence[TraceMetadata] | None = None,
) -> Iterator[SlotTrace]:
    """Cohort counterpart of :func:`~repro.ran.simulator.simulate_uplink`."""
    params = params or SimParams()
    if metadatas is None:
        metadatas = [TraceMetadata(
            carrier_name=cell.name, direction="UL",
            bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
        ) for _ in channels]
    if not (len(channels) == len(rngs) == len(metadatas)) or not channels:
        raise ValueError("cohort needs matching, non-empty channels/rngs/metadatas")
    ul_cell = replace(cell, max_modulation=Modulation.QAM64) \
        if cell.max_modulation is not Modulation.QAM64 else cell
    return _simulate_direction_cohort(
        ul_cell, channels, SlotType.UL, rngs, params,
        max_layers=min(max_layers, cell.max_layers), n_prb=cell.grantable_rb,
        metadatas=metadatas,
    )
