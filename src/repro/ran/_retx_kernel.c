/* Native batched retransmission kernel for the cohort tensor engine.
 *
 * One call advances every batched dirty column of a single CQI period.
 * The per-column walk is a transliteration of the Python reference
 * `_run_column_period` in tensor.py (itself a flattened transliteration
 * of the per-session engine's run_period/_fallback_slot pair): the
 * cursor visits each slot of the period, serving due retransmissions at
 * eligible slots (the shared retx_fits_slot rule), transmitting new
 * data at special slots that cannot carry an oversized due block (the
 * deferral rule), and committing maximal clean sub-segments bounded by
 * the due head and the first fresh NACK's re-arm point.
 *
 * Byte-identity with the Python tiers is exact because the only
 * floating-point operations are one IEEE double multiply, one clamp
 * and one comparison per event — `min(1.0, p_hint * scale)` compared
 * against the pre-drawn uniform — with no accumulation anywhere.
 *
 * Lane state is the caller's struct-of-arrays (due / tbs / att / p
 * rows per column, strictly increasing due order).  Due slots are
 * unique and monotone in push order (every push is slot + rtt with at
 * most one push per slot), so the sorted lane is exactly the engines'
 * due-slot min-heap: pops advance a head offset, pushes append at the
 * tail, and the row is compacted before returning.  The caller
 * guarantees lane capacity >= pending count + period length (each slot
 * queues at most one block).
 *
 * Outputs: per-column ack/nack counts over new transmissions, committed
 * sub-segments as (col, lo, hi) triples and served/deferred events as
 * (col, slot, tbs, ok, is_retx) rows — the same buffers the numpy
 * batched pass appends, in identical within-column (chronological)
 * order, so the flush path is shared unchanged.
 */
#include <stdint.h>
#include <string.h>

int64_t repro_retx_period(
    /* batched columns */
    int64_t nb, const int64_t *bidx, int64_t start, int64_t stop,
    /* lane state: (n_cols, cap) row-major, pending count per column */
    int64_t cap, int64_t *due, int64_t *tbs, int64_t *att, double *ph,
    int64_t *pn, int64_t far_sentinel,
    /* per-call batched inputs: (nb, m) fresh-failure mask, per-column
     * transmit case and grant sizes */
    const uint8_t *failm, const int64_t *caseb,
    const int64_t *tbsf, const int64_t *tbss,
    /* cohort constants */
    int64_t n_slots, const double *retx2, const uint8_t *decoded2,
    const double *perr2, int64_t perr_stride,
    const int64_t *cum4, const uint8_t *usable, const uint8_t *special,
    int64_t rtt, double scale, int64_t max_attempts,
    /* outputs */
    int64_t *acks, int64_t *nacks,
    int64_t *seg_col, int64_t *seg_lo, int64_t *seg_hi,
    int64_t *ev_col, int64_t *ev_slot, int64_t *ev_tbs,
    uint8_t *ev_ok, uint8_t *ev_retx,
    int64_t *counts /* {n_segments, n_events} */)
{
    int64_t m = stop - start;
    int64_t ns = 0, ne = 0;

    for (int64_t k = 0; k < nb; k++) {
        int64_t c = bidx[k];
        int64_t *due_r = due + c * cap;
        int64_t *tbs_r = tbs + c * cap;
        int64_t *att_r = att + c * cap;
        double *ph_r = ph + c * cap;
        int64_t head = 0;
        int64_t count = pn[c];
        int64_t tail = count;

        const uint8_t *fm = failm + k * m;
        const int64_t *cum = cum4 + caseb[k] * (n_slots + 1);
        int64_t tf = tbsf[k], ts = tbss[k];
        const double *rx = retx2 + c * n_slots;
        const uint8_t *dec = decoded2 + c * n_slots;
        const double *pe = perr2 + c * perr_stride;

        /* e = period-relative position of the next fresh-NACK
         * candidate (kept normalized: fm[e] set, or e == m). */
        int64_t e = 0;
        while (e < m && !fm[e])
            e++;

        int64_t i = start;
        int64_t a = 0, nk = 0;
        while (i < stop) {
            if (count > 0 && due_r[head] <= i) {
                /* Retransmission window: per-slot fallback until the
                 * due block is served or deferred past. */
                if (usable[i]) {
                    int is_sp = special[i];
                    int64_t htbs = tbs_r[head];
                    if (!(is_sp && htbs > ts)) {
                        /* Serve the due head (retx_fits_slot). */
                        int64_t hatt = att_r[head];
                        double hp = ph_r[head];
                        double pr = hp * scale;
                        if (!(pr < 1.0))
                            pr = 1.0;
                        uint8_t ok = rx[i] >= pr;
                        ev_col[ne] = c;
                        ev_slot[ne] = i;
                        ev_tbs[ne] = htbs;
                        ev_ok[ne] = ok;
                        ev_retx[ne] = 1;
                        ne++;
                        head++;
                        count--;
                        if (!ok && hatt + 1 < max_attempts) {
                            due_r[tail] = i + rtt;
                            tbs_r[tail] = htbs;
                            att_r[tail] = hatt + 1;
                            ph_r[tail] = hp;
                            tail++;
                            count++;
                        }
                    } else if (ts > 0) {
                        /* Deferral: the special slot carries new data
                         * while the oversized block waits. */
                        int64_t j = i - start;
                        uint8_t ok = dec[i];
                        ev_col[ne] = c;
                        ev_slot[ne] = i;
                        ev_tbs[ne] = ts;
                        ev_ok[ne] = ok;
                        ev_retx[ne] = 0;
                        ne++;
                        if (ok) {
                            a++;
                        } else {
                            due_r[tail] = i + rtt;
                            tbs_r[tail] = ts;
                            att_r[tail] = 1;
                            ph_r[tail] = pe[j];
                            tail++;
                            count++;
                            nk++;
                        }
                    }
                }
                i++;
                /* The fallback owned that position: drop any fresh-NACK
                 * candidate there. */
                if (e < i - start) {
                    e = i - start;
                    while (e < m && !fm[e])
                        e++;
                }
                continue;
            }
            /* Clean sub-segment up to the due head, the period end, or
             * the first fresh NACK's re-arm point. */
            int64_t seg_end = stop;
            if (count > 0 && due_r[head] < stop)
                seg_end = due_r[head];
            if (e < m) {
                int64_t first = start + e;
                if (first < seg_end && first + rtt < seg_end)
                    seg_end = first + rtt;
            }
            int64_t j1 = seg_end - start;
            /* Queue every fresh NACK in the committed range, in slot
             * order: their due slots lie at or beyond seg_end. */
            int64_t seg_nacks = 0;
            while (e < j1) {
                due_r[tail] = start + e + rtt;
                tbs_r[tail] = special[start + e] ? ts : tf;
                att_r[tail] = 1;
                ph_r[tail] = pe[e];
                tail++;
                count++;
                seg_nacks++;
                e++;
                while (e < m && !fm[e])
                    e++;
            }
            nk += seg_nacks;
            seg_col[ns] = c;
            seg_lo[ns] = i;
            seg_hi[ns] = seg_end;
            ns++;
            a += cum[seg_end] - cum[i] - seg_nacks;
            i = seg_end;
        }
        acks[k] = a;
        nacks[k] = nk;
        /* Compact the lane back to offset 0 and restore the due
         * sentinel over vacated tail entries. */
        if (head > 0) {
            if (count > 0) {
                memmove(due_r, due_r + head, count * sizeof(int64_t));
                memmove(tbs_r, tbs_r + head, count * sizeof(int64_t));
                memmove(att_r, att_r + head, count * sizeof(int64_t));
                memmove(ph_r, ph_r + head, count * sizeof(double));
            }
            for (int64_t q = count; q < tail; q++)
                due_r[q] = far_sentinel;
        }
        pn[c] = count;
    }
    counts[0] = ns;
    counts[1] = ne;
    return 0;
}
