"""Optional native retransmission kernel for the cohort tensor engine.

The batched dirty-cell pass is dispatch-bound in pure numpy: one CQI
period advances ~25 columns through a handful of events each, and at
those sizes the per-ufunc dispatch cost dominates the arithmetic by two
orders of magnitude.  This module compiles ``_retx_kernel.c`` — a
transliteration of the Python reference walk with byte-identical
semantics — into a tiny shared library with the system C compiler and
loads it through :mod:`ctypes`.

Everything is gated: no compiler, a failed build, a failed load or
``REPRO_NATIVE=0`` all degrade silently to the pure-numpy batched pass
(the portable tier), and :func:`kernel_status` exposes what happened so
``repro cache stats`` and the bench report can say which tier ran.

The build is cached under ``$REPRO_NATIVE_CACHE`` (default
``$XDG_CACHE_HOME/repro-native``) keyed by a source digest, so each
machine compiles once; concurrent builders race benignly through an
atomic rename, and worker processes just ``dlopen`` the cached library.
"""
from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Any

#: Set to ``0``/``off``/``false`` to force the pure-numpy batched pass.
NATIVE_ENV = "REPRO_NATIVE"

#: Override the build cache directory (useful for hermetic CI runs).
NATIVE_CACHE_ENV = "REPRO_NATIVE_CACHE"

_SOURCE = Path(__file__).with_name("_retx_kernel.c")

_state: dict[str, Any] = {"loaded": False, "fn": None, "error": None}

_i64 = ctypes.c_int64
_ptr = ctypes.c_void_p

#: ``repro_retx_period`` signature — positional groups mirror the C
#: declaration: batched columns, lane state, per-call inputs, cohort
#: constants, outputs.
_ARGTYPES = [
    _i64, _ptr, _i64, _i64,                       # nb, bidx, start, stop
    _i64, _ptr, _ptr, _ptr, _ptr, _ptr, _i64,     # cap, due, tbs, att, ph, pn, far
    _ptr, _ptr, _ptr, _ptr,                       # failm, case, tbsf, tbss
    _i64, _ptr, _ptr, _ptr, _i64,                 # n_slots, retx2, decoded2, perr2, stride
    _ptr, _ptr, _ptr,                             # cum4, usable, special
    _i64, ctypes.c_double, _i64,                  # rtt, scale, max_attempts
    _ptr, _ptr,                                   # acks, nacks
    _ptr, _ptr, _ptr,                             # seg col/lo/hi
    _ptr, _ptr, _ptr, _ptr, _ptr,                 # ev col/slot/tbs/ok/retx
    _ptr,                                         # counts
]


def _disabled() -> bool:
    return os.environ.get(NATIVE_ENV, "").strip().lower() in (
        "0", "off", "false", "no")


def _cache_dir() -> Path:
    env = os.environ.get(NATIVE_CACHE_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def _compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build(source: Path, out: Path) -> None:
    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH (set CC to override)")
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=out.parent, suffix=".so")
    os.close(fd)
    try:
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, str(source)],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(tmp, out)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_kernel():
    """The compiled period kernel, or ``None`` when unavailable.

    First call compiles (or reuses the cached build) and memoizes the
    outcome — including failures, so a broken toolchain costs one
    attempt per process, not one per period.
    """
    if _state["loaded"]:
        return _state["fn"]
    _state["loaded"] = True
    if _disabled():
        _state["error"] = f"disabled via {NATIVE_ENV}"
        return None
    try:
        src = _SOURCE.read_bytes()
        tag = hashlib.sha256(src).hexdigest()[:16]
        lib_path = _cache_dir() / f"retx-{tag}.so"
        if not lib_path.exists():
            _build(_SOURCE, lib_path)
        lib = ctypes.CDLL(str(lib_path))
        fn = lib.repro_retx_period
        fn.restype = _i64
        fn.argtypes = _ARGTYPES
    except Exception as exc:  # noqa: BLE001 - any failure means fallback
        _state["error"] = f"{type(exc).__name__}: {exc}"
        return None
    _state["fn"] = fn
    return fn


def kernel_status() -> dict[str, Any]:
    """Build/load outcome for diagnostics (stats, bench report)."""
    return {
        "loaded": _state["loaded"],
        "available": _state["fn"] is not None,
        "error": _state["error"],
    }


def _reset_for_tests() -> None:
    """Forget the memoized load so tests can exercise both tiers."""
    _state.update(loaded=False, fn=None, error=None)
