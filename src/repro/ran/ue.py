"""User equipment model.

A UE owns a channel realization (its radio environment for the run),
CQI-reporting behaviour, and link-adaptation state.  The campaign used
Samsung Galaxy S21U phones, 4-layer 256QAM-capable devices — the
defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.model import ChannelRealization
from repro.nr.cqi import CQI_MAX
from repro.nr.mcs import Modulation
from repro.nr.signal import sinr_to_cqi
from repro.ran.amc import LinkAdapter


@dataclass
class UserEquipment:
    """A measured UE attached to a cell.

    Parameters
    ----------
    ue_id:
        Identifier within the simulation.
    channel:
        Per-slot channel realization for the run.
    max_layers:
        Device MIMO capability (4 for the S21U).
    max_modulation:
        Device modulation capability.
    cqi_delay_slots:
        Age of the channel state a CQI report reflects (measurement +
        processing + signaling delay); the paper's appendix 10.2 puts the
        feedback loop at ~10 ms scales, i.e. tens of slots.
    cqi_measurement_noise_db:
        Gaussian error on the SINR estimate underlying each CQI report.
    """

    ue_id: int
    channel: ChannelRealization
    max_layers: int = 4
    max_modulation: Modulation = Modulation.QAM256
    cqi_delay_slots: int = 8
    cqi_measurement_noise_db: float = 0.5
    link: LinkAdapter | None = None

    def __post_init__(self) -> None:
        if self.cqi_delay_slots < 0:
            raise ValueError("cqi_delay_slots must be non-negative")
        if self.cqi_measurement_noise_db < 0:
            raise ValueError("measurement noise must be non-negative")

    def measured_sinr_db(self, slot: int, rng: np.random.Generator | None = None) -> float:
        """SINR estimate available at ``slot`` (delayed, noisy)."""
        idx = max(0, slot - self.cqi_delay_slots)
        idx = min(idx, self.channel.n_slots - 1)
        sinr = float(self.channel.sinr_db[idx])
        if rng is not None and self.cqi_measurement_noise_db > 0:
            sinr += self.cqi_measurement_noise_db * float(rng.standard_normal())
        return sinr

    def report_cqi(self, slot: int, cqi_table, rng: np.random.Generator | None = None) -> tuple[int, float]:
        """CQI report at ``slot``: returns ``(cqi, measured_sinr_db)``."""
        sinr = self.measured_sinr_db(slot, rng)
        cqi = int(sinr_to_cqi(sinr, cqi_table))
        return min(cqi, CQI_MAX), sinr
