"""Carrier aggregation (CA).

All three U.S. operators aggregate mid-band (and low-band) component
carriers to overcome the fragmented U.S. spectrum (§3.1): T-Mobile
combines n41 and n25 channels into aggregates of up to 180 MHz, which
the paper's appendix 10.5 (Fig. 23) shows boosting DL throughput to an
average of ~1.3 Gbps.  European operators had not deployed CA.

CA here is DL-only (as deployed at measurement time): each component
carrier (CC) runs an independent link simulation against its own channel
realization; the aggregate throughput is the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.model import ChannelRealization, SyntheticChannel
from repro.ran.config import CellConfig
from repro.ran.simulator import SimParams, simulate_downlink
from repro.xcal.records import SlotTrace, TraceMetadata


@dataclass
class AggregatedResult:
    """Outcome of a CA downlink run."""

    per_carrier: list[SlotTrace]

    def __post_init__(self) -> None:
        if not self.per_carrier:
            raise ValueError("need at least one component carrier trace")

    @property
    def n_carriers(self) -> int:
        return len(self.per_carrier)

    @property
    def mean_throughput_mbps(self) -> float:
        """Aggregate mean DL throughput (sum of CCs)."""
        return float(sum(t.mean_throughput_mbps for t in self.per_carrier))

    def throughput_mbps(self, bin_ms: float) -> np.ndarray:
        """Aggregate throughput series (CCs summed per bin)."""
        series = [t.throughput_mbps(bin_ms) for t in self.per_carrier]
        n = min(s.size for s in series)
        if n == 0:
            return np.array([])
        return np.sum([s[:n] for s in series], axis=0)

    @property
    def aggregate_bandwidth_mhz(self) -> float:
        return float(sum(t.metadata.bandwidth_mhz for t in self.per_carrier))

    @property
    def primary(self) -> SlotTrace:
        """The primary cell (first CC)."""
        return self.per_carrier[0]


@dataclass
class CarrierAggregation:
    """A CA configuration: component carriers plus per-CC channel quality.

    Parameters
    ----------
    carriers:
        Component carrier configs, primary first.
    sinr_offsets_db:
        Per-CC adjustment applied to the environment's mean SINR
        (secondary carriers — often at different frequencies — see
        different link budgets).  Defaults to zeros.
    """

    carriers: list[CellConfig]
    sinr_offsets_db: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.carriers:
            raise ValueError("need at least one component carrier")
        if not self.sinr_offsets_db:
            self.sinr_offsets_db = [0.0] * len(self.carriers)
        if len(self.sinr_offsets_db) != len(self.carriers):
            raise ValueError("one SINR offset per carrier required")

    @property
    def aggregate_bandwidth_mhz(self) -> float:
        return float(sum(c.bandwidth_mhz for c in self.carriers))

    def simulate_downlink(
        self,
        base_channel: SyntheticChannel,
        duration_s: float,
        rng: np.random.Generator | None = None,
        params: SimParams | None = None,
        operator: str = "unknown",
    ) -> AggregatedResult:
        """Run an independent DL simulation per CC and aggregate.

        Each CC gets its own realization drawn from ``base_channel``
        shifted by the CC's SINR offset (same environment, independent
        fast fading — the carriers are at different frequencies).
        """
        from dataclasses import replace as dc_replace

        from repro.channel.blockage import NO_BLOCKAGE
        from repro.nr.numerology import slot_duration_ms

        rng = rng or np.random.default_rng()
        traces: list[SlotTrace] = []
        # Blockage hits the whole link (the body/vehicle blocks the beam,
        # not one carrier): draw one attenuation series on the finest
        # slot grid among the CCs and share it.
        shared_attenuation: dict = {}
        if base_channel.blockage is not NO_BLOCKAGE and base_channel.blockage.blockage_rate_hz > 0:
            finest_mu = max(cell.mu for cell in self.carriers)
            slot_ms = slot_duration_ms(finest_mu)
            n_slots = max(1, int(round(duration_s * 1000.0 / slot_ms)))
            fine = base_channel.blockage.attenuation_db(
                n_slots, slot_ms, base_channel.speed_mps, rng)
            for cell in self.carriers:
                stride = 2 ** (int(finest_mu) - int(cell.mu))
                shared_attenuation[cell.mu] = fine[::stride] if stride > 1 else fine
        for cell, offset in zip(self.carriers, self.sinr_offsets_db):
            cc_channel = dc_replace(base_channel, mean_sinr_db=base_channel.mean_sinr_db + offset)
            realization: ChannelRealization = cc_channel.realize(
                duration_s, mu=cell.mu, rng=rng,
                extra_attenuation_db=shared_attenuation.get(cell.mu),
            )
            metadata = TraceMetadata(
                operator=operator, carrier_name=cell.name, direction="DL",
                bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
            )
            traces.append(simulate_downlink(cell, realization, rng=rng, params=params, metadata=metadata))
        return AggregatedResult(traces)
