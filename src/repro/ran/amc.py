"""Link adaptation: BLER model, OLLA, and rank adaptation.

The gNB picks MCS and MIMO rank per grant from the UE's CQI/RI feedback
(§3.1, appendix 10.2).  Three cooperating pieces:

- :class:`BlerModel` — probability a transport block fails decoding given
  the gap between the scheduled spectral efficiency and the channel's
  instantaneous capacity (logistic link-abstraction, the standard
  system-simulation shortcut).
- :class:`Olla` — outer-loop link adaptation: a signed MCS offset nudged
  down on NACK and up on ACK so the *realized* initial BLER converges to
  the ~10% target regardless of CQI estimation bias.
- :class:`RankAdapter` — maps SINR to 1..4 MIMO layers via thresholds
  with hysteresis; per-deployment bias reproduces the paper's Fig. 6
  (e.g. O_Sp 100 MHz mostly at 3 layers, the 90 MHz carriers at 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nr.mcs import McsTable
from repro.nr.signal import DEFAULT_ALPHA, shannon_efficiency

#: Standard initial-BLER operating target.
DEFAULT_BLER_TARGET = 0.10


@dataclass(frozen=True)
class BlerModel:
    """Logistic link abstraction.

    The decode-failure probability of a TB scheduled at spectral
    efficiency ``eff_mcs`` when the channel sustains ``eff_cap`` is::

        p = 1 / (1 + exp(-(eff_mcs - eff_cap - bias) / slope))

    ``slope`` controls how sharp the waterfall is (bits/s/Hz); ``bias``
    shifts the 50% point.  The defaults put the 10%-BLER operating point
    ~0.3 b/s/Hz below the instantaneous capacity — the small margin a
    converged OLLA loop maintains on a commercial link.
    """

    slope: float = 0.10
    bias: float = -0.12
    #: Effective link efficiency.  Deliberately below the CQI-reporting
    #: alpha (see ``SimParams.cqi_alpha``): the realized spectral
    #: efficiency of commercial mid-band links sits well under the
    #: UE-reported channel quality, and OLLA bridges the gap.
    alpha: float = 0.60

    def capacity(self, sinr_db) -> np.ndarray:
        """Instantaneous sustainable efficiency ``eff_cap`` of the channel.

        Exposed separately so the simulator can evaluate it once per
        trace and reuse it across CQI periods (the SINR series is fixed;
        only ``eff_mcs`` changes period to period).
        """
        return shannon_efficiency(sinr_db, self.alpha)

    def error_probability_given_capacity(self, eff_mcs, eff_cap,
                                         out: np.ndarray | None = None) -> np.ndarray:
        """Decode-failure probability from a precomputed :meth:`capacity`.

        ``eff_mcs`` may be a scalar or an array.  With ``out`` the whole
        evaluation runs in-place in that buffer — same ufunc sequence,
        so bit-identical values, but no temporaries; the simulator calls
        this once per CQI period on a ~20-element slice, where the seven
        allocations would otherwise dominate the arithmetic.
        """
        if out is None:
            x = (eff_mcs - eff_cap - self.bias) / self.slope
            return 1.0 / (1.0 + np.exp(-x))
        np.subtract(eff_mcs, eff_cap, out=out)
        out -= self.bias
        out /= self.slope
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)
        return out

    def error_probability(self, eff_mcs, sinr_db) -> np.ndarray:
        """Vectorized decode-failure probability."""
        return self.error_probability_given_capacity(eff_mcs, self.capacity(sinr_db))

    def draw_errors(self, eff_mcs, sinr_db, rng: np.random.Generator) -> np.ndarray:
        """Bernoulli decode failures for an array of transmissions."""
        p = self.error_probability(eff_mcs, sinr_db)
        return rng.random(np.shape(p)) < p


@dataclass
class Olla:
    """Outer-loop link adaptation on the MCS index.

    Maintains a continuous offset ``delta``; the applied integer MCS
    shift is ``round(delta)``.  Updates follow the classic asymmetric
    rule that equilibrates at the BLER target:

    - NACK: ``delta -= step_down``
    - ACK:  ``delta += step_down * target / (1 - target)``
    """

    target_bler: float = DEFAULT_BLER_TARGET
    step_down: float = 0.5
    delta: float = 0.0
    min_offset: float = -15.0
    max_offset: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_bler < 1.0:
            raise ValueError("target_bler must lie in (0, 1)")
        if self.step_down <= 0:
            raise ValueError("step_down must be positive")

    @property
    def step_up(self) -> float:
        return self.step_down * self.target_bler / (1.0 - self.target_bler)

    @property
    def offset(self) -> int:
        """Integer MCS-index shift currently applied."""
        return int(round(self.delta))

    def update(self, acked: bool) -> None:
        """Apply one ACK/NACK observation."""
        # min/max instead of np.clip: same value, no array round-trip on
        # a path the multi-UE simulator hits once per UE per slot.
        delta = self.delta + (self.step_up if acked else -self.step_down)
        self.delta = min(max(delta, self.min_offset), self.max_offset)

    def update_batch(self, n_ack: int, n_nack: int) -> None:
        """Apply a batch of observations (order-free net update)."""
        if n_ack < 0 or n_nack < 0:
            raise ValueError("counts must be non-negative")
        delta = self.delta + n_ack * self.step_up - n_nack * self.step_down
        self.delta = min(max(delta, self.min_offset), self.max_offset)


@dataclass(frozen=True)
class RankAdapter:
    """SINR-threshold rank selection with hysteresis.

    ``thresholds_db[k]`` is the minimum SINR for rank ``k + 2`` (rank 1
    has no threshold).  ``bias_db`` shifts all thresholds: a *positive*
    bias means the deployment needs more SINR to reach high rank
    (sparser coverage, more interference — the O_Sp 100 MHz situation);
    a negative bias the opposite.
    """

    thresholds_db: tuple[float, ...] = (5.0, 11.0, 17.0)
    bias_db: float = 0.0
    hysteresis_db: float = 1.0
    max_layers: int = 4

    def __post_init__(self) -> None:
        if list(self.thresholds_db) != sorted(self.thresholds_db):
            raise ValueError("thresholds must be non-decreasing")
        if self.max_layers < 1:
            raise ValueError("max_layers must be positive")

    def rank_for_sinr(self, sinr_db: float, previous_rank: int = 1) -> int:
        """Rank decision for one report, with hysteresis on downgrades."""
        rank = 1
        for k, threshold in enumerate(self.thresholds_db):
            candidate = k + 2
            if candidate > self.max_layers:
                break
            effective = threshold + self.bias_db
            if candidate <= previous_rank:
                effective -= self.hysteresis_db  # sticky: easier to keep
            if sinr_db >= effective:
                rank = candidate
        return min(rank, self.max_layers)

    def rank_series(self, sinr_db: np.ndarray) -> np.ndarray:
        """Sequential rank decisions over a series of SINR reports."""
        sinr_db = np.asarray(sinr_db, dtype=float)
        ranks = np.empty(sinr_db.size, dtype=np.int64)
        previous = 1
        for i, value in enumerate(sinr_db):
            previous = self.rank_for_sinr(float(value), previous)
            ranks[i] = previous
        return ranks


@dataclass
class LinkAdapter:
    """Per-UE link-adaptation state: OLLA plus current rank."""

    mcs_table: McsTable
    olla: Olla = field(default_factory=Olla)
    rank_adapter: RankAdapter = field(default_factory=RankAdapter)
    current_rank: int = 1

    def select_rank(self, sinr_db: float) -> int:
        """Update and return the MIMO rank for a new measurement report."""
        self.current_rank = self.rank_adapter.rank_for_sinr(sinr_db, self.current_rank)
        return self.current_rank

    def select_mcs(self, mapper, cqi: int) -> int:
        """MCS for a CQI report through the vendor mapper + OLLA offset."""
        return mapper.mcs_for_cqi(cqi, olla_offset=self.olla.offset)
