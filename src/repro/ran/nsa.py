"""NSA (non-stand-alone) dual connectivity for the uplink.

§4.2: "in the non-stand-alone (NSA) mode, UL transmissions rely on both
5G and 4G channels (dual-connectivity) to attain higher throughput, and
sometimes exclusively use 4G channels due to their generally larger
coverage and better channel quality."  The split policy is
operator-specific; :class:`NsaUplink` models the three observed regimes:

- ``nr_fraction = 1.0`` — UL on NR only,
- ``0 < nr_fraction < 1`` — split bearer,
- ``nr_fraction = 0.0`` — UL on LTE only (T-Mobile's observed
  preference on the 100 MHz n41 channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.model import ChannelRealization
from repro.ran.config import CellConfig
from repro.ran.lte import LteCellConfig, simulate_lte_uplink
from repro.ran.simulator import SimParams, simulate_uplink
from repro.xcal.records import SlotTrace


@dataclass
class NsaUplinkResult:
    """Outcome of an NSA uplink run."""

    nr_trace: SlotTrace | None
    lte_mbps_series: np.ndarray
    nr_fraction: float

    @property
    def nr_mean_mbps(self) -> float:
        """Mean UL throughput of the NR leg (0 if unused)."""
        if self.nr_trace is None:
            return 0.0
        return self.nr_trace.mean_throughput_mbps

    @property
    def lte_mean_mbps(self) -> float:
        """Mean UL throughput of the LTE leg (0 if unused)."""
        if self.lte_mbps_series.size == 0:
            return 0.0
        return float(self.lte_mbps_series.mean())

    @property
    def total_mean_mbps(self) -> float:
        """Aggregate UL throughput across both legs."""
        return self.nr_mean_mbps + self.lte_mean_mbps


@dataclass
class NsaUplink:
    """An NSA uplink configuration.

    Parameters
    ----------
    nr_cell:
        The NR carrier.
    lte_cell:
        The LTE anchor.
    nr_fraction:
        Long-run fraction of UL traffic carried on the NR leg.
    lte_sinr_offset_db:
        LTE UL SINR relative to the NR UL SINR (LTE's lower band has a
        better link budget; positive values mean LTE sees a better
        channel, which is what the paper observes).
    """

    nr_cell: CellConfig
    lte_cell: LteCellConfig = field(default_factory=LteCellConfig)
    nr_fraction: float = 1.0
    lte_sinr_offset_db: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.nr_fraction <= 1.0:
            raise ValueError("nr_fraction must lie in [0, 1]")

    def simulate(
        self,
        ul_channel: ChannelRealization,
        rng: np.random.Generator | None = None,
        params: SimParams | None = None,
    ) -> NsaUplinkResult:
        """Run both legs against the UL channel realization.

        The NR leg runs the slot-level UL simulation on its share of the
        traffic; the LTE leg runs the subframe-level LTE model on the
        (1 ms-downsampled) SINR series shifted by the LTE offset.  Each
        leg's throughput is scaled by its traffic share.
        """
        rng = rng or np.random.default_rng()
        nr_trace: SlotTrace | None = None
        if self.nr_fraction > 0.0:
            nr_trace = simulate_uplink(self.nr_cell, ul_channel, rng=rng, params=params)
            # Scale delivered bits by the traffic share: a split bearer
            # only offers this fraction of the backlog to the NR leg.
            nr_trace.delivered_bits[:] = (nr_trace.delivered_bits * self.nr_fraction).astype(np.int64)
            nr_trace.tbs_bits[:] = (nr_trace.tbs_bits * self.nr_fraction).astype(np.int64)
        lte_series = np.array([])
        if self.nr_fraction < 1.0:
            # Downsample the slot-grid SINR to the LTE 1 ms subframe grid.
            slots_per_subframe = max(1, int(round(1.0 / ul_channel.times_ms()[1] if ul_channel.n_slots > 1 else 1)))
            sinr = ul_channel.sinr_db
            n_sub = sinr.size // slots_per_subframe
            sinr_sub = sinr[: n_sub * slots_per_subframe].reshape(n_sub, slots_per_subframe).mean(axis=1)
            lte_series = simulate_lte_uplink(
                self.lte_cell, sinr_sub + self.lte_sinr_offset_db, rng=rng
            ) * (1.0 - self.nr_fraction)
        return NsaUplinkResult(nr_trace=nr_trace, lte_mbps_series=lte_series, nr_fraction=self.nr_fraction)
