"""Paper-reported numbers used as reproduction targets.

Every value here is read off a table or figure of the paper; the
experiment harness prints paper-vs-measured rows against these, and the
benchmark suite asserts the *shape* constraints (orderings, approximate
ratios) documented in DESIGN.md §4.
"""

from __future__ import annotations

# Fig. 1 — mean PHY DL throughput (Mbps), European operators.
FIG1_EU_DL_MBPS = {
    "V_It": 809.8,
    "V_Sp": 743.0,
    "O_Sp_90": 713.3,
    "T_Ge": 601.1,
    "O_Fr": 627.1,
    "O_Sp_100": 614.7,
}

# Fig. 1 — mean PHY DL throughput (Gbps), U.S. operators (with CA).
FIG1_US_DL_GBPS = {
    "Tmb_US": 1.2,
    "Vzw_US": 1.3,
    "Att_US": 0.4,
}

# Fig. 2 — Spain DL throughput with CQI >= 12 (Mbps).
FIG2_SPAIN_CQI12_MBPS = {
    "V_Sp": 771.0,
    "O_Sp_90": 759.7,
    "O_Sp_100": 557.4,
}

# Fig. 5 — modulation-order usage shares (%), Spain.
FIG5_MODULATION_SHARES = {
    "V_Sp": {"qam256": 7.6, "qam64": 91.5},
    "O_Sp_90": {"qam256": 8.2, "qam64": 91.1},
    "O_Sp_100": {"qam256": 0.0, "qam64": 98.0},
}

# Fig. 6 — MIMO-layer usage shares (%), Spain.
FIG6_LAYER_SHARES = {
    "V_Sp": {4: 87.1, "rest": 12.9},
    "O_Sp_90": {4: 83.8, "rest": 16.2},
    "O_Sp_100": {4: 13.8, 3: 74.1, 2: 12.2},
}

# Fig. 9 — mean PHY UL throughput with CQI >= 12 (Mbps), Europe.
FIG9_EU_UL_MBPS = {
    "V_It": 88.0,
    "S_Fr": 31.1,
    "V_Ge": 23.8,
    "T_Ge": 35.2,
    "O_Fr": 53.6,
    "V_Sp": 55.6,
    "O_Sp_90": 95.6,
    "O_Sp_100": 64.3,
}

# Fig. 10 — mean PHY UL throughput (Mbps), U.S. channels and the LTE leg.
FIG10_US_UL_MBPS = {
    "good": {"Att_US": 20.5, "Vzw_US": 46.4, "Tmb_US": 23.8, "LTE_US": 72.6},  # CQI >= 12
    "poor": {"Att_US": 0.3, "Vzw_US": 13.0, "Tmb_US": 3.4, "LTE_US": 44.8},    # CQI < 10
}

# Fig. 11 — PHY user-plane latency (ms).
FIG11_LATENCY_MS = {
    "bler0": {"V_It": 6.93, "V_Ge": 2.13, "O_Fr": 5.33, "T_Ge": 2.48},
    "bler_pos": {"V_It": 7.37, "V_Ge": 2.20, "O_Fr": 5.77, "T_Ge": 2.90},
}

# Fig. 11 context — TDD patterns called out in §4.3.
TDD_PATTERNS = {
    "V_It": "DDDDDDDSUU",
    "V_Ge": "DDDSU",
    "O_Fr": "DDDDDDDSUU",
    "T_Ge": "DDDSU",
}

# Fig. 12 — variability annotations (mean ± std at the 2 s window).
FIG12_ANNOTATIONS = {
    "throughput": {"O_Sp_100": (63.9, 16.6), "O_Sp_90": (68.4, 3.3), "V_Sp": (65.2, 3.6), "V_It": (42.3, 5.6)},
    "mcs": {"O_Sp_100": (2.1, 0.7), "O_Sp_90": (1.7, 0.52), "V_Sp": (1.6, 0.57), "V_It": (1.2, 0.32)},
    "mimo": {"O_Sp_100": (0.17, 0.03), "O_Sp_90": (0.13, 0.02), "V_Sp": (0.11, 0.007), "V_It": (0.02, 0.002)},
}

# Fig. 14 — multi-location / multi-user experiment (a U.S. operator).
FIG14_SEQUENTIAL = {"A": {"tput_mbps": 595.1, "rbs": 172}, "B": {"tput_mbps": 579.5, "rbs": 162}}
FIG14_SIMULTANEOUS = {"A": {"tput_mbps": 283.7, "rbs": 110}, "B": {"tput_mbps": 277.7, "rbs": 103}}

# Fig. 16 — example BOLA run over V_Sp.
FIG16_AVG_QUALITY = 5.41
FIG16_STALL_PERCENT = 9.96

# Fig. 17 — chunk-length effect (V_Ge), 4 s -> 1 s chunks.
FIG17_VGE_NORM_BITRATE = {"4s": 0.55, "1s": 0.90}
FIG17_VGE_STALL_PERCENT = {"4s": 1.0, "1s": 0.4}

# §6 headline improvements.
CHUNK_BITRATE_IMPROVEMENT_MAX = 0.40  # up to +40% average bitrate
CHUNK_STALL_REDUCTION_MAX = 0.50      # up to -50% stall percentage

# §7 — mid-band vs mmWave aggregate throughput.
SEC7_THROUGHPUT = {
    "walking": {"midband_gbps": 1.6, "mmwave_gbps": 3.2},
    "driving": {"midband_gbps": 0.9355, "mmwave_gbps": 1.1},
}
SEC7_MIDBAND_STABILITY_GAIN = {"walking": 0.414, "driving": 0.424}
SEC7_SCALED_LADDER_BITRATE_FRACTION = 0.808  # driving, scaled-up ladder

# §3.2 — theoretical max throughput the paper quotes (2-layer evaluation).
EQ32_PAPER_VALUES_MBPS = {"V_Sp_90MHz": 1213.44, "O_Sp_100MHz": 1352.12}

# Fig. 23 — T-Mobile CA benefit.
FIG23_CA_MEAN_GBPS = 1.3
FIG23_CA_MAX_GBPS = 1.4

# Table 1 — campaign statistics.
TABLE1 = {
    "countries": ["Spain", "France", "Italy", "Germany", "USA"],
    "cities": ["Madrid", "Paris", "Rome", "Munich", "Chicago"],
    "sim_cards": 23,
    "smartphones": 6,
    "smartphone_models": 3,
    "servers": 122,
    "data_tb": 5.02,
    "test_minutes": 5600,
    "duration_weeks": 17,
}
