"""ASCII renderings of experiment results (``python -m repro run --plot``).

Maps experiment ids to chart renderings built from their ``data``
payloads with :mod:`repro.core.plotting` — bar charts for the
per-operator comparisons, CDFs for Fig. 3, V(t) line plots for Fig. 12,
sparklines for the time-series figures.  Experiments without a
registered rendering return an empty string.
"""

from __future__ import annotations

import numpy as np

from repro.core.plotting import bar_chart, line_plot, side_by_side, sparkline
from repro.experiments.base import ExperimentResult


def _plot_fig01(result: ExperimentResult) -> str:
    eu = {key: value for key, value in result.data["eu"].items()}
    us = {key: value * 1000.0 for key, value in result.data["us"].items()}
    return "EU DL throughput (Mbps)\n" + bar_chart(eu, unit=" Mbps") + \
        "\n\nUS DL throughput with CA (Mbps)\n" + bar_chart(us, unit=" Mbps")


def _plot_fig02(result: ExperimentResult) -> str:
    values = {key: row["cqi12_mbps"] for key, row in result.data.items()
              if isinstance(row, dict)}
    return "Spain DL throughput, CQI >= 12 (Mbps)\n" + bar_chart(values, unit=" Mbps")


def _plot_fig03(result: ExperimentResult) -> str:
    blocks = []
    for key, row in result.data.items():
        values, probs = row["cdf"]
        if len(values) >= 2:
            blocks.append(f"{key}\n" + line_plot(np.asarray(values), np.asarray(probs),
                                                 height=8, width=30, x_label="REs"))
    return side_by_side(blocks) if blocks else ""


def _plot_fig09(result: ExperimentResult) -> str:
    values = {key: row["ul_mbps"] for key, row in result.data.items()
              if isinstance(row, dict)}
    return "EU UL throughput, CQI >= 12 (Mbps)\n" + bar_chart(values, unit=" Mbps")


def _plot_fig11(result: ExperimentResult) -> str:
    values = {f"{key} ({row['pattern']})": row["bler0_ms"]
              for key, row in result.data.items()}
    return "PHY user-plane latency, BLER = 0 (ms)\n" + bar_chart(values, unit=" ms")


def _plot_fig12(result: ExperimentResult) -> str:
    blocks = []
    for key in ("O_Sp_100", "V_It"):
        profile = result.data[key]["throughput"]
        blocks.append(f"{key}: V(t) of throughput\n" + line_plot(
            np.log2(profile["scales_ms"]), profile["v"],
            height=8, width=34, x_label="log2(t ms)"))
    return side_by_side(blocks)


def _plot_fig13(result: ExperimentResult) -> str:
    rows = []
    for name in ("tput", "mcs", "mimo", "rbs"):
        rows.append(f"{name:>5s} {sparkline(result.data[name], width=70)}")
    return "V_Sp at 60 ms (throughput / MCS / MIMO / RBs)\n" + "\n".join(rows)


def _plot_fig16(result: ExperimentResult) -> str:
    rows = [
        "tput  " + sparkline(result.data["tput_60ms"], width=70),
        "level " + sparkline(result.data["levels"].astype(float), width=70),
        "buffer" + sparkline(result.data["buffer_timeline"], width=70),
    ]
    return "BOLA session over V_Sp (throughput / quality / buffer)\n" + "\n".join(rows)


_RENDERERS = {
    "fig01": _plot_fig01,
    "fig02": _plot_fig02,
    "fig03": _plot_fig03,
    "fig09": _plot_fig09,
    "fig11": _plot_fig11,
    "fig12": _plot_fig12,
    "fig13": _plot_fig13,
    "fig16": _plot_fig16,
}


def render_plots(result: ExperimentResult) -> str:
    """ASCII figure for a result, or "" if no rendering is registered."""
    renderer = _RENDERERS.get(result.experiment_id)
    if renderer is None:
        return ""
    return renderer(result)
