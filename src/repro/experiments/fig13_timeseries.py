"""Fig. 13 — time-series dissection of V_Sp at 60 ms granularity.

A ~4.4 minute trace plotted at 60 ms: lower MCS/MIMO lead to lower
throughput, and MCS/MIMO fluctuations drive throughput fluctuations,
while RB allocation stays near the maximum and contributes little.
The experiment reports the correlations and relative variabilities that
the figure shows visually.
"""

from __future__ import annotations

import numpy as np

from repro.core.timeseries import KpiSeries
from repro.core.variability import scaled_variability
from repro.experiments.base import ExperimentResult, dl_trace, qoe_channel
from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink

BIN_MS = 60.0


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 60.0 if quick else 264.0  # the paper's trace is 264 s
    profile = EU_PROFILES["V_Sp"]
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    # Streaming-scenario channel: pronounced slow swings like the figure.
    channel = qoe_channel(profile, swing_db=4.0, swing_period_s=40.0).realize(
        duration, mu=cell.mu, rng=rng)
    trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())

    tput = KpiSeries(trace.throughput_mbps(BIN_MS), BIN_MS, "throughput")
    mcs = KpiSeries.from_trace_column(trace, "mcs_index", bin_ms=BIN_MS)
    mimo = KpiSeries.from_trace_column(trace, "layers", bin_ms=BIN_MS)
    rbs = KpiSeries.from_trace_column(trace, "n_prb", bin_ms=BIN_MS)

    n = min(len(tput), len(mcs), len(mimo), len(rbs))
    corr_mcs = float(np.corrcoef(tput.values[:n], mcs.values[:n])[0, 1])
    corr_mimo = float(np.corrcoef(tput.values[:n], mimo.values[:n])[0, 1])
    rb_cv = rbs.std / rbs.mean if rbs.mean else float("nan")
    mcs_cv = mcs.std / mcs.mean if mcs.mean else float("nan")

    rows = [
        f"trace: {duration:.0f} s of V_Sp at {BIN_MS:.0f} ms bins "
        f"(mean tput {tput.mean:6.1f} Mbps, std {tput.std:6.1f})",
        f"corr(throughput, MCS)  = {corr_mcs:+.2f}   (paper: strongly positive)",
        f"corr(throughput, MIMO) = {corr_mimo:+.2f}   (paper: strongly positive)",
        f"coefficient of variation: RBs {rb_cv:.3f} vs MCS {mcs_cv:.3f} "
        "(paper: RB allocation contributes far less variability)",
        f"V(60 ms): tput {scaled_variability(tput.values, 1):7.2f}  "
        f"mcs {scaled_variability(mcs.values, 1):5.2f}  "
        f"mimo {scaled_variability(mimo.values, 1):5.3f}  "
        f"rbs {scaled_variability(rbs.values, 1):5.2f}",
    ]
    data = {
        "tput": tput.values, "mcs": mcs.values, "mimo": mimo.values, "rbs": rbs.values,
        "corr_mcs": corr_mcs, "corr_mimo": corr_mimo,
        "rb_cv": rb_cv, "mcs_cv": mcs_cv,
    }
    return ExperimentResult("fig13", "V_Sp time-series dissection at 60 ms (Fig. 13)", rows, data)
