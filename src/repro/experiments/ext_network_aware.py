"""Extension — 5G-network-aware ABR (the §8 proposal, not a paper figure).

"Developing adaptive algorithms that can better accommodate 5G channel
variability — making them 5G-network-aware — is key to enhance
application QoE."  This experiment compares plain BOLA against
:class:`~repro.apps.video.aware.NetworkAwareBola`, which throttles its
aggressiveness using the modem's own PHY instability signal (the §5
joint MCS/MIMO variability), across Fig. 15-style sessions.
"""

from __future__ import annotations

import numpy as np

from repro.apps.video import Bola, PAPER_LADDER_MIDBAND, StreamingSession, Video
from repro.apps.video.aware import NetworkAwareBola, phy_instability_series
from repro.experiments.base import ExperimentResult, qoe_channel
from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink

RUNS = (
    ("V_Sp", 5.0, 0.05, 0),
    ("V_Sp", 6.0, 0.06, 1),
    ("O_Sp_100", 5.0, 0.05, 2),
    ("O_Sp_100", 6.0, 0.06, 3),
)


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 70.0 if quick else 180.0
    rows: list[str] = []
    totals = {"bola": {"bitrate": [], "stall": []},
              "aware": {"bitrate": [], "stall": []}}
    for key, swing, event_rate, offset in RUNS:
        profile = EU_PROFILES[key]
        cell = profile.primary_cell
        rng = np.random.default_rng(seed + 17 * offset)
        channel = qoe_channel(profile, swing_db=swing, swing_period_s=35.0,
                              mean_offset_db=1.0, event_rate_hz=event_rate,
                              event_depth_db=22.0).realize(duration, mu=cell.mu, rng=rng)
        trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
        capacity = trace.throughput_mbps(50.0)
        instability = phy_instability_series(trace, window_s=2.0)
        video = Video(duration_s=duration - 5.0, chunk_s=4.0, ladder=PAPER_LADDER_MIDBAND)
        algorithms = {
            "bola": Bola(video.ladder),
            "aware": NetworkAwareBola(video.ladder, instability),
        }
        for name, abr in algorithms.items():
            session = StreamingSession(video=video, abr=abr, capacity_mbps=capacity,
                                       buffer_capacity_s=12.0).run()
            qoe = session.qoe()
            totals[name]["bitrate"].append(qoe.normalized_bitrate)
            totals[name]["stall"].append(qoe.stall_percentage)
    data: dict = {}
    for name, metrics in totals.items():
        data[name] = {
            "norm_bitrate": float(np.mean(metrics["bitrate"])),
            "stall_pct": float(np.mean(metrics["stall"])),
        }
        rows.append(f"{name:6s} norm_bitrate {data[name]['norm_bitrate']:5.3f}  "
                    f"stall {data[name]['stall_pct']:5.2f}%")
    data["stall_reduction"] = 1.0 - (
        data["aware"]["stall_pct"] / max(data["bola"]["stall_pct"], 1e-9))
    rows.append(
        f"network awareness cuts stalls by {100 * data['stall_reduction']:.0f}% "
        f"at {100 * (data['aware']['norm_bitrate'] / max(data['bola']['norm_bitrate'], 1e-9) - 1):+.1f}% bitrate"
    )
    return ExperimentResult("ext_aware", "5G-network-aware ABR (§8 extension)", rows, data)
