"""Fig. 17 / §6.2 — smaller video chunks improve QoE over 5G.

Re-runs the same sessions with 4 s and 1 s chunks on O_Fr and V_Ge:
the shorter chunk lets BOLA react at a faster time scale, improving
average bitrate by up to ~40% and cutting stall percentage by ~50%.
"""

from __future__ import annotations

import numpy as np

from repro.apps.video import Bola, PAPER_LADDER_MIDBAND, StreamingSession, Video
from repro.experiments.base import ExperimentResult, qoe_channel
from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink

KEYS = ("O_Fr", "V_Ge")
CHUNK_LENGTHS_S = (4.0, 1.0)
N_RUNS_QUICK = 2
N_RUNS_FULL = 5


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 70.0 if quick else 180.0
    n_runs = N_RUNS_QUICK if quick else N_RUNS_FULL
    rows: list[str] = []
    data: dict = {}
    for key in KEYS:
        profile = EU_PROFILES[key]
        cell = profile.primary_cell
        results: dict[float, dict[str, list[float]]] = {
            c: {"bitrate": [], "stall": []} for c in CHUNK_LENGTHS_S
        }
        for run_idx in range(n_runs):
            rng = np.random.default_rng(seed + 31 * run_idx)
            channel = qoe_channel(profile, swing_db=5.0, swing_period_s=40.0,
                                  mean_offset_db=1.0, event_rate_hz=0.045,
                                  event_depth_db=18.0).realize(duration, mu=cell.mu, rng=rng)
            trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
            capacity = trace.throughput_mbps(50.0)
            for chunk_s in CHUNK_LENGTHS_S:
                video = Video(duration_s=duration - 5.0, chunk_s=chunk_s,
                              ladder=PAPER_LADDER_MIDBAND)
                session = StreamingSession(video=video, abr=Bola(video.ladder),
                                           capacity_mbps=capacity,
                                           buffer_capacity_s=12.0).run()
                qoe = session.qoe()
                results[chunk_s]["bitrate"].append(qoe.normalized_bitrate)
                results[chunk_s]["stall"].append(qoe.stall_percentage)
        summary = {
            chunk_s: {
                "norm_bitrate": float(np.mean(r["bitrate"])),
                "stall_pct": float(np.mean(r["stall"])),
            }
            for chunk_s, r in results.items()
        }
        data[key] = summary
        gain = (summary[1.0]["norm_bitrate"] / max(summary[4.0]["norm_bitrate"], 1e-9)) - 1.0
        stall_cut = 1.0 - summary[1.0]["stall_pct"] / max(summary[4.0]["stall_pct"], 1e-9)
        data[key]["bitrate_gain"] = gain
        data[key]["stall_reduction"] = stall_cut
        rows.append(
            f"{key:6s} 4s: bitrate {summary[4.0]['norm_bitrate']:5.3f} stall {summary[4.0]['stall_pct']:5.2f}%   "
            f"1s: bitrate {summary[1.0]['norm_bitrate']:5.3f} stall {summary[1.0]['stall_pct']:5.2f}%   "
            f"gain {100 * gain:+5.1f}% bitrate, {100 * stall_cut:+5.1f}% stall cut"
        )
    rows.append("paper: bitrate up to +40% (V_Ge 0.55 -> 0.9) and stall percentage roughly halved")
    return ExperimentResult("fig17", "chunk length 4 s vs 1 s (Fig. 17)", rows, data)
