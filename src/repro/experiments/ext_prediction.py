"""Extension — PHY-feature throughput prediction (conclusion's AI/ML note).

Trains a ridge predictor from windowed PHY KPIs (MCS, layers, CQI,
SINR, variability) to next-window throughput and compares against the
persistence baseline on a held-out trace — the Lumos5G-style result
that lower-layer KPIs carry predictive signal beyond the throughput
history itself.  The model predicts the residual over persistence, so
the baseline is nested within it and any improvement is attributable to
the PHY features.
"""

from __future__ import annotations

import numpy as np

from repro.core.prediction import (
    EvaluationResult,
    ThroughputPredictor,
    extract_features,
    persistence_baseline,
)
from repro.experiments.base import ExperimentResult, qoe_channel
from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink

N_TRAIN_TRACES = 3


def _trace_features(profile, duration_s: float, seed: int):
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    channel = qoe_channel(profile, swing_db=5.0, swing_period_s=30.0,
                          mean_offset_db=0.0, event_rate_hz=0.04,
                          event_depth_db=18.0).realize(duration_s, mu=cell.mu, rng=rng)
    trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
    return extract_features(trace, window_ms=500.0)


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 90.0 if quick else 240.0
    profile = EU_PROFILES["V_Sp"]

    # Train on several independent sessions, evaluate on a held-out one
    # (cross-session generalization, the deployment-relevant setting).
    train_parts = [_trace_features(profile, duration, seed + 13 * k)
                   for k in range(N_TRAIN_TRACES)]
    features_train = np.vstack([p[0] for p in train_parts])
    targets_train = np.concatenate([p[1] for p in train_parts])
    features_test, targets_test = _trace_features(profile, duration, seed + 999)

    residuals_train = targets_train - persistence_baseline(features_train)
    predictor = ThroughputPredictor(alpha=10.0).fit(features_train, residuals_train)
    predicted = persistence_baseline(features_test) + predictor.predict(features_test)
    baseline = persistence_baseline(features_test)
    denom = np.maximum(np.abs(targets_test), 1.0)
    outcome = EvaluationResult(
        model_mae=float(np.mean(np.abs(predicted - targets_test))),
        baseline_mae=float(np.mean(np.abs(baseline - targets_test))),
        model_mape=float(np.mean(np.abs(predicted - targets_test) / denom)),
        baseline_mape=float(np.mean(np.abs(baseline - targets_test) / denom)),
    )
    importance = predictor.feature_importance()
    top = sorted(importance.items(), key=lambda item: -item[1])[:4]

    rows = [
        f"training: {features_train.shape[0]} windows from {N_TRAIN_TRACES} sessions; "
        f"evaluation: {features_test.shape[0]} held-out windows (500 ms each)",
        f"model MAE {outcome.model_mae:7.1f} Mbps  (MAPE {100 * outcome.model_mape:5.1f}%)",
        f"persistence MAE {outcome.baseline_mae:7.1f} Mbps  (MAPE {100 * outcome.baseline_mape:5.1f}%)",
        f"improvement over persistence: {100 * outcome.improvement:+.1f}%",
        "top residual features: " + ", ".join(f"{name} ({weight:.1f})" for name, weight in top),
    ]
    data = {
        "model_mae": outcome.model_mae,
        "baseline_mae": outcome.baseline_mae,
        "improvement": outcome.improvement,
        "importance": importance,
        "n_train": features_train.shape[0],
        "n_test": features_test.shape[0],
    }
    return ExperimentResult("ext_predict", "PHY-feature throughput prediction (extension)",
                            rows, data)
