"""Fig. 24 (appendix 10.4) — BOLA vs throughput-based vs dynamic ABR.

Across sessions in Spain-like and U.S.-like conditions, BOLA
consistently delivers the best (normalized bitrate, stall) trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.apps.video import Bola, DynamicAbr, PAPER_LADDER_MIDBAND, StreamingSession, ThroughputBased, Video
from repro.experiments.base import ExperimentResult, qoe_channel
from repro.operators.profiles import ALL_PROFILES
from repro.ran.simulator import simulate_downlink

RUN_KEYS = ("V_Sp", "O_Sp_100", "Vzw_US")
ALGORITHMS = (Bola, ThroughputBased, DynamicAbr)


def qoe_score(norm_bitrate: float, stall_pct: float, stall_weight: float = 0.1) -> float:
    """A simple scalarization: bitrate minus a stall penalty."""
    return norm_bitrate - stall_weight * stall_pct


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 60.0 if quick else 150.0
    n_runs = 3 if quick else 4
    rows: list[str] = []
    totals = {cls.__name__: {"bitrate": [], "stall": []} for cls in ALGORITHMS}
    for key in RUN_KEYS:
        profile = ALL_PROFILES[key]
        cell = profile.primary_cell
        for run_idx in range(n_runs):
            rng = np.random.default_rng(seed + 101 * run_idx)
            channel = qoe_channel(profile, swing_db=5.0, swing_period_s=35.0,
                                  mean_offset_db=1.0, event_rate_hz=0.04,
                                  event_depth_db=18.0).realize(duration, mu=cell.mu, rng=rng)
            trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
            capacity = trace.throughput_mbps(50.0)
            video = Video(duration_s=duration - 5.0, chunk_s=4.0, ladder=PAPER_LADDER_MIDBAND)
            for cls in ALGORITHMS:
                session = StreamingSession(video=video, abr=cls(video.ladder),
                                           capacity_mbps=capacity,
                                           buffer_capacity_s=12.0).run()
                qoe = session.qoe()
                totals[cls.__name__]["bitrate"].append(qoe.normalized_bitrate)
                totals[cls.__name__]["stall"].append(qoe.stall_percentage)
    data: dict = {}
    for name, metrics in totals.items():
        bitrate = float(np.mean(metrics["bitrate"]))
        stall = float(np.mean(metrics["stall"]))
        data[name] = {"norm_bitrate": bitrate, "stall_pct": stall,
                      "score": qoe_score(bitrate, stall)}
        rows.append(f"{name:16s} norm_bitrate {bitrate:5.3f}  stall {stall:5.2f}%  "
                    f"score {data[name]['score']:6.3f}")
    best = max(data, key=lambda n: data[n]["score"])
    rows.append(f"best (bitrate - stall penalty): {best}  (paper: BOLA consistently performs better)")
    data["best"] = best
    return ExperimentResult("fig24", "ABR algorithm comparison (Fig. 24)", rows, data)
