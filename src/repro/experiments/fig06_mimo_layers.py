"""Fig. 6 — MIMO-layer usage shares for the Spanish operators.

The decisive factor behind Fig. 2: the 90 MHz carriers run 4x4 MIMO
~85% of the time while the 100 MHz carrier mostly gets 3 layers — a
direct consequence of its sparser deployment (Fig. 7 / appendix 10.3).
"""

from __future__ import annotations

from repro import papertargets as targets
from repro.experiments.base import ExperimentResult, dl_trace
from repro.operators.profiles import EU_PROFILES

SPAIN_KEYS = ("O_Sp_90", "O_Sp_100", "V_Sp")


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 10.0 if quick else 40.0
    rows: list[str] = []
    data: dict = {}
    for key in SPAIN_KEYS:
        trace = dl_trace(EU_PROFILES[key], duration, seed)
        shares = {layers: 100 * share for layers, share in trace.layer_shares().items()}
        data[key] = shares
        paper = targets.FIG6_LAYER_SHARES.get(key, {})
        paper4 = paper.get(4, 0.0)
        rows.append(
            f"{key:10s} 4L {shares.get(4, 0.0):5.1f}% (paper {paper4:5.1f}%)  "
            f"3L {shares.get(3, 0.0):5.1f}%  2L {shares.get(2, 0.0):5.1f}%  "
            f"1L {shares.get(1, 0.0):5.1f}%"
        )
    return ExperimentResult("fig06", "MIMO-layer shares, Spain (Fig. 6)", rows, data)
