"""Experiment result container and shared helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.model import ChannelRealization, SyntheticChannel
from repro.operators.profiles import OperatorProfile
from repro.ran.simulator import simulate_downlink, simulate_uplink
from repro.xcal.records import SlotTrace, TraceMetadata


@dataclass
class ExperimentResult:
    """Outcome of one experiment.

    Attributes
    ----------
    experiment_id:
        Registry id (``"fig02"`` etc.).
    title:
        The paper artifact reproduced.
    rows:
        Printable result rows (the same quantities the paper reports).
    data:
        Machine-readable results keyed by series/operator.
    """

    experiment_id: str
    title: str
    rows: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        """The harness's printable block."""
        header = f"== {self.experiment_id}: {self.title} =="
        return "\n".join([header, *self.rows])


def paper_vs_measured_row(label: str, paper: float, measured: float, unit: str = "") -> str:
    """Standard 'paper vs measured' comparison row."""
    if paper == 0:
        ratio = float("inf") if measured else 1.0
    else:
        ratio = measured / paper
    return (f"{label:14s} paper {paper:9.2f}{unit}  measured {measured:9.2f}{unit}  "
            f"ratio {ratio:5.2f}")


def dl_trace(profile: OperatorProfile, duration_s: float, seed: int,
             sinr_offset_db: float = 0.0) -> SlotTrace:
    """One full-buffer DL trace of a profile's primary carrier."""
    rng = np.random.default_rng(seed)
    cell = profile.primary_cell
    channel = profile.dl_channel(sinr_offset_db).realize(duration_s, mu=cell.mu, rng=rng)
    metadata = TraceMetadata(operator=profile.operator, country=profile.country,
                             carrier_name=cell.name, direction="DL",
                             bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz, seed=seed)
    return simulate_downlink(cell, channel, rng=rng, params=profile.sim_params(), metadata=metadata)


def ul_trace(profile: OperatorProfile, duration_s: float, seed: int,
             sinr_offset_db: float = 0.0) -> SlotTrace:
    """One full-buffer UL trace of a profile's primary carrier."""
    rng = np.random.default_rng(seed)
    cell = profile.primary_cell
    channel = profile.ul_channel(sinr_offset_db).realize(duration_s, mu=cell.mu, rng=rng)
    metadata = TraceMetadata(operator=profile.operator, country=profile.country,
                             carrier_name=cell.name, direction="UL",
                             bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz, seed=seed)
    return simulate_uplink(cell, channel, rng=rng, params=profile.sim_params(),
                           max_layers=profile.ul_max_layers, metadata=metadata)


def qoe_channel(profile: OperatorProfile, swing_db: float = 6.0,
                swing_period_s: float = 40.0,
                mean_offset_db: float = 0.0,
                event_rate_hz: float = 0.03,
                event_duration_s: float = 4.0,
                event_depth_db: float = 15.0) -> SyntheticChannel:
    """A streaming-scenario channel: slow swings plus abrupt drop events.

    The §6 sessions ran minutes-long in spots whose conditions drifted
    substantially (Fig. 16 shows throughput gliding from ~900 down to
    ~200 Mbps) *and* suffered sudden collapses — the paper pins the
    stalls on "sudden drops in 5G throughput" that BOLA cannot foresee.
    Two ingredients reproduce that:

    - a long-coherence high-sigma slow component (the drift),
    - a sporadic deep-drop event process (seconds-long SINR collapses:
      deep fades, re-selections, cross traffic), modeled by the same
      two-state machinery as mmWave blockage.
    """
    from dataclasses import replace

    from repro.channel.blockage import BlockageProcess

    base = profile.dl_channel(mean_offset_db)
    slow_coherence_slots = swing_period_s * 1000.0 / 0.5
    events = BlockageProcess(
        blockage_rate_hz=event_rate_hz,
        mean_blockage_duration_s=event_duration_s,
        blockage_attenuation_db=event_depth_db,
        speed_scaling=0.0,
    ) if event_rate_hz > 0 else base.blockage
    return replace(
        base,
        slow_sigma_db=swing_db,
        slow_coherence_slots=slow_coherence_slots,
        blockage=events,
    )
