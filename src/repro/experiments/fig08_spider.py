"""Fig. 8 — the spider-plot summary of DL-throughput factors (Spain).

One joint view of the interplay the section dissected: channel
bandwidth, allocated REs, modulation scheme, MIMO layers, and the
resulting PHY DL throughput, per Spanish carrier.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, dl_trace
from repro.operators.profiles import EU_PROFILES

SPAIN_KEYS = ("V_Sp", "O_Sp_90", "O_Sp_100")


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 8.0 if quick else 30.0
    rows: list[str] = [
        f"{'carrier':10s} {'BW(MHz)':>8s} {'REs/slot':>9s} {'mean mod':>9s} "
        f"{'mean layers':>12s} {'DL tput (Mbps)':>15s}"
    ]
    data: dict = {}
    for key in SPAIN_KEYS:
        profile = EU_PROFILES[key]
        trace = dl_trace(profile, duration, seed)
        sched = trace.scheduled_view()
        mean_mod = float(sched.modulation_order.mean()) if len(sched) else 0.0
        mean_layers = float(sched.layers.mean()) if len(sched) else 0.0
        mean_re = float(sched.n_re.mean()) if len(sched) else 0.0
        data[key] = {
            "bandwidth_mhz": profile.primary_cell.bandwidth_mhz,
            "mean_re": mean_re,
            "mean_modulation_order": mean_mod,
            "mean_layers": mean_layers,
            "tput_mbps": trace.mean_throughput_mbps,
        }
        rows.append(
            f"{key:10s} {profile.primary_cell.bandwidth_mhz:8d} {mean_re:9.0f} "
            f"{mean_mod:9.2f} {mean_layers:12.2f} {trace.mean_throughput_mbps:15.1f}"
        )
    rows.append("reading: O_Sp_100 leads on bandwidth and REs yet trails on modulation, layers, and throughput")
    return ExperimentResult("fig08", "DL-throughput factor interplay (Fig. 8)", rows, data)
