"""Fig. 1 — PHY DL throughput of European and U.S. operators.

European operators run a single mid-band carrier; the U.S. operators
aggregate carriers (CA), which is what pushes them beyond 1 Gbps.
"""

from __future__ import annotations

import numpy as np

from repro import papertargets as targets
from repro.experiments.base import ExperimentResult, dl_trace, paper_vs_measured_row
from repro.operators.profiles import EU_PROFILES, US_PROFILES


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 8.0 if quick else 30.0
    rows: list[str] = ["-- Europe (single carrier, Mbps) --"]
    data: dict = {"eu": {}, "us": {}}

    for key, paper_mbps in targets.FIG1_EU_DL_MBPS.items():
        trace = dl_trace(EU_PROFILES[key], duration, seed)
        measured = trace.mean_throughput_mbps
        data["eu"][key] = measured
        rows.append(paper_vs_measured_row(key, paper_mbps, measured, " Mbps"))

    rows.append("-- United States (carrier aggregation, Gbps) --")
    for key, paper_gbps in targets.FIG1_US_DL_GBPS.items():
        profile = US_PROFILES[key]
        rng = np.random.default_rng(seed + 17)
        result = profile.carrier_aggregation().simulate_downlink(
            profile.dl_channel(), duration, rng=rng,
            params=profile.sim_params(), operator=profile.operator,
        )
        measured = result.mean_throughput_mbps / 1000.0
        data["us"][key] = measured
        rows.append(paper_vs_measured_row(key, paper_gbps, measured, " Gbps"))

    return ExperimentResult("fig01", "PHY DL throughput, EU and U.S. (Fig. 1)", rows, data)
