"""Fig. 1 — PHY DL throughput of European and U.S. operators.

European operators run a single mid-band carrier; the U.S. operators
aggregate carriers (CA), which is what pushes them beyond 1 Gbps.

The per-operator sessions are independent, so they are expanded into a
session manifest and executed through :mod:`repro.core.runner`
(``jobs=N`` fans out to a process pool with identical results).
"""

from __future__ import annotations

import numpy as np

from repro import papertargets as targets
from repro.core.runner import SessionTask, run_tasks
from repro.experiments.base import ExperimentResult, dl_trace, paper_vs_measured_row
from repro.operators.profiles import EU_PROFILES, US_PROFILES


def _us_ca_session(profile, duration_s: float, seed: int):
    """One CA full-buffer DL run of a U.S. profile (module-level for pickling)."""
    rng = np.random.default_rng(seed)
    return profile.carrier_aggregation().simulate_downlink(
        profile.dl_channel(), duration_s, rng=rng,
        params=profile.sim_params(), operator=profile.operator,
    )


def run(seed: int = 2024, quick: bool = True, jobs: int | str = 1,
        store=None, executor=None) -> ExperimentResult:
    duration = 8.0 if quick else 30.0
    eu_keys = list(targets.FIG1_EU_DL_MBPS)
    us_keys = list(targets.FIG1_US_DL_GBPS)
    manifest = [
        SessionTask(fn=dl_trace,
                    kwargs={"profile": EU_PROFILES[key], "duration_s": duration},
                    seed=seed, label=f"eu/{key}")
        for key in eu_keys
    ] + [
        SessionTask(fn=_us_ca_session,
                    kwargs={"profile": US_PROFILES[key], "duration_s": duration},
                    seed=seed + 17, label=f"us/{key}")
        for key in us_keys
    ]
    results = run_tasks(manifest, jobs=jobs, store=store, executor=executor)

    rows: list[str] = ["-- Europe (single carrier, Mbps) --"]
    data: dict = {"eu": {}, "us": {}}
    for key, trace in zip(eu_keys, results[: len(eu_keys)]):
        measured = trace.mean_throughput_mbps
        data["eu"][key] = measured
        rows.append(paper_vs_measured_row(key, targets.FIG1_EU_DL_MBPS[key], measured, " Mbps"))

    rows.append("-- United States (carrier aggregation, Gbps) --")
    for key, result in zip(us_keys, results[len(eu_keys):]):
        measured = result.mean_throughput_mbps / 1000.0
        data["us"][key] = measured
        rows.append(paper_vs_measured_row(key, targets.FIG1_US_DL_GBPS[key], measured, " Gbps"))

    return ExperimentResult("fig01", "PHY DL throughput, EU and U.S. (Fig. 1)", rows, data)
