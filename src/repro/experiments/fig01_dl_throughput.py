"""Fig. 1 — PHY DL throughput of European and U.S. operators.

European operators run a single mid-band carrier; the U.S. operators
aggregate carriers (CA), which is what pushes them beyond 1 Gbps.

The per-operator sessions are independent, so they are expanded into a
session manifest and executed through :mod:`repro.core.runner`
(``jobs=N`` fans out to a process pool with identical results).  With
``reduce=True`` sessions fold into per-label KPI sketches instead of
materializing traces; the reported means are exact either way (one
session per label), so the printed rows are byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro import papertargets as targets
from repro.core.runner import SessionTask, run_tasks
from repro.experiments.base import ExperimentResult, dl_trace, paper_vs_measured_row
from repro.operators.profiles import EU_PROFILES, US_PROFILES


def _us_ca_session(profile, duration_s: float, seed: int):
    """One CA full-buffer DL run of a U.S. profile (module-level for pickling)."""
    rng = np.random.default_rng(seed)
    return profile.carrier_aggregation().simulate_downlink(
        profile.dl_channel(), duration_s, rng=rng,
        params=profile.sim_params(), operator=profile.operator,
    )


def run(seed: int = 2024, quick: bool = True, jobs: int | str = 1,
        store=None, executor=None, reduce: bool = False) -> ExperimentResult:
    duration = 8.0 if quick else 30.0
    eu_keys = list(targets.FIG1_EU_DL_MBPS)
    us_keys = list(targets.FIG1_US_DL_GBPS)
    manifest = [
        SessionTask(fn=dl_trace,
                    kwargs={"profile": EU_PROFILES[key], "duration_s": duration},
                    seed=seed, label=f"eu/{key}")
        for key in eu_keys
    ] + [
        SessionTask(fn=_us_ca_session,
                    kwargs={"profile": US_PROFILES[key], "duration_s": duration},
                    seed=seed + 17, label=f"us/{key}")
        for key in us_keys
    ]

    data: dict = {"eu": {}, "us": {}}
    if reduce:
        from repro.core.reduce import CampaignReduction

        reduction = CampaignReduction(group_mode="label")
        sketch = run_tasks(manifest, jobs=jobs, store=store, executor=executor,
                           reduce=reduction)
        for key in eu_keys:
            data["eu"][key] = sketch.groups[f"eu/{key}"].throughput.mean
        for key in us_keys:
            data["us"][key] = sketch.groups[f"us/{key}"].throughput.mean / 1000.0
        data["reduce_stats"] = dict(reduction.stats)
    else:
        results = run_tasks(manifest, jobs=jobs, store=store, executor=executor)
        for key, trace in zip(eu_keys, results[: len(eu_keys)]):
            data["eu"][key] = trace.mean_throughput_mbps
        for key, result in zip(us_keys, results[len(eu_keys):]):
            data["us"][key] = result.mean_throughput_mbps / 1000.0

    rows: list[str] = ["-- Europe (single carrier, Mbps) --"]
    for key in eu_keys:
        rows.append(paper_vs_measured_row(key, targets.FIG1_EU_DL_MBPS[key],
                                          data["eu"][key], " Mbps"))
    rows.append("-- United States (carrier aggregation, Gbps) --")
    for key in us_keys:
        rows.append(paper_vs_measured_row(key, targets.FIG1_US_DL_GBPS[key],
                                          data["us"][key], " Gbps"))

    return ExperimentResult("fig01", "PHY DL throughput, EU and U.S. (Fig. 1)", rows, data)
