"""Fig. 18 / §7 — 5G mid-band vs mmWave: throughput and channel
variability under walking and driving.

mmWave offers ~2x the walking throughput but is far more variable at
every time scale; driving intensifies blockage-driven outages and
narrows the throughput gap (walking 1.6 vs 3.2 Gbps; driving ~0.94 vs
1.1 Gbps in the paper).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import papertargets as targets
from repro.core.variability import variability_profile
from repro.experiments.base import ExperimentResult
from repro.operators.profiles import US_PROFILES, mmwave_blockage, mmwave_profile

WALKING_MPS = 1.4
DRIVING_MPS = 11.0

#: Mobility-scenario adjustments (speed, SINR penalty dB, fast-sigma add).
SCENARIOS = {
    "walking": {"speed": WALKING_MPS, "penalty_mid": 0.0, "penalty_mm": 0.0, "sigma_add": 0.5},
    "driving": {"speed": DRIVING_MPS, "penalty_mid": -4.5, "penalty_mm": -7.0, "sigma_add": 1.5},
}

#: SINR boost of the §7 mid-band areas over the Fig. 1 baseline (the
#: comparison areas were selected for strong mid-band *and* mmWave
#: coverage, and the walking aggregate reaches 1.6 Gbps there).
MIDBAND_AREA_BOOST_DB = 6.0


def _midband_run(duration_s: float, scenario: dict, seed: int):
    """Best-case U.S. mid-band CA under mobility (§7 uses U.S. operators)."""
    profile = US_PROFILES["Tmb_US"]
    profile = replace(profile,
                      mean_sinr_db=profile.mean_sinr_db + MIDBAND_AREA_BOOST_DB + scenario["penalty_mid"],
                      fast_sigma_db=profile.fast_sigma_db + scenario["sigma_add"])
    rng = np.random.default_rng(seed)
    base = profile.dl_channel()
    # Mobility shortens the fading coherence.
    base = replace(base, fast_coherence_slots=max(4.0, base.fast_coherence_slots / (1.0 + scenario["speed"])))
    return profile.carrier_aggregation().simulate_downlink(
        base, duration_s, rng=rng, params=profile.sim_params(), operator="midband")


def _mmwave_run(duration_s: float, scenario: dict, seed: int):
    profile = mmwave_profile(scenario["speed"])
    profile = replace(profile, mean_sinr_db=profile.mean_sinr_db + scenario["penalty_mm"],
                      fast_sigma_db=profile.fast_sigma_db + scenario["sigma_add"])
    rng = np.random.default_rng(seed + 5)
    base = profile.dl_channel()
    base = replace(
        base,
        blockage=mmwave_blockage(scenario["speed"]),
        speed_mps=scenario["speed"],
        fast_coherence_slots=max(4.0, base.fast_coherence_slots / (1.0 + scenario["speed"])),
    )
    return profile.carrier_aggregation().simulate_downlink(
        base, duration_s, rng=rng, params=profile.sim_params(), operator="mmwave")


def _relative_variability(result, scale_ms: float = 128.0) -> float:
    """V(scale)/mean over the aggregate throughput series at 8 ms bins."""
    series = result.throughput_mbps(8.0)
    scales, values = variability_profile(series, 8.0, max_scale_ms=2048.0)
    idx = int(np.argmin(np.abs(scales - scale_ms)))
    mean = series.mean()
    return float(values[idx] / mean) if mean > 0 else float("nan")


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 6.0 if quick else 25.0
    rows: list[str] = []
    data: dict = {}
    for name, scenario in SCENARIOS.items():
        mid = _midband_run(duration, scenario, seed)
        mm = _mmwave_run(duration, scenario, seed)
        rv_mid = _relative_variability(mid)
        rv_mm = _relative_variability(mm)
        stability_gain = 1.0 - rv_mid / rv_mm if rv_mm > 0 else float("nan")
        paper = targets.SEC7_THROUGHPUT[name]
        data[name] = {
            "midband_gbps": mid.mean_throughput_mbps / 1000.0,
            "mmwave_gbps": mm.mean_throughput_mbps / 1000.0,
            "rv_midband": rv_mid,
            "rv_mmwave": rv_mm,
            "stability_gain": stability_gain,
        }
        rows.append(
            f"{name:8s} mid-band {data[name]['midband_gbps']:5.2f} Gbps (paper {paper['midband_gbps']:.2f})  "
            f"mmWave {data[name]['mmwave_gbps']:5.2f} Gbps (paper {paper['mmwave_gbps']:.2f})  "
            f"rel. V(128ms) mid {rv_mid:5.3f} vs mm {rv_mm:5.3f}  "
            f"mid-band {100 * stability_gain:4.1f}% more stable "
            f"(paper {100 * targets.SEC7_MIDBAND_STABILITY_GAIN[name]:.1f}%)"
        )
    return ExperimentResult("fig18", "mid-band vs mmWave under mobility (Fig. 18)", rows, data)
