"""Table 1 — measurement-campaign statistics.

Generates a (scaled-down) synthetic campaign over all operator profiles
and prints its statistics next to the paper's Table 1.  The synthetic
campaign covers the same operators/cities; minutes and bytes scale with
the ``quick`` knob rather than re-generating 5 TB.
"""

from __future__ import annotations

from repro import papertargets as targets
from repro.experiments.base import ExperimentResult
from repro.operators.profiles import ALL_PROFILES
from repro.xcal.dataset import CampaignSpec, generate_campaign


def run(seed: int = 2024, quick: bool = True, jobs: int | str = 1,
        store=None, executor=None, reduce: bool = False) -> ExperimentResult:
    spec = CampaignSpec(
        minutes_per_operator=0.5 if quick else 2.0,
        session_s=10.0 if quick else 20.0,
        seed=seed,
    )
    # With reduce=True this is a CampaignSummary — same reporting
    # surface, no materialized traces (see repro.xcal.dataset).
    campaign = generate_campaign(spec=spec, jobs=jobs, store=store,
                                 executor=executor, reduce=reduce)
    paper = targets.TABLE1

    countries = sorted({p.country for p in ALL_PROFILES.values()})
    cities = sorted({p.city for p in ALL_PROFILES.values()})
    rows = [
        f"countries:      paper {paper['countries']}  ours {countries}",
        f"cities:         paper {paper['cities']}  ours {cities}",
        f"operators:      paper 7 (9 operator-channels)  ours {len(campaign.operators)} operator-channels",
        f"network tests:  paper {paper['test_minutes']}+ minutes  ours {campaign.total_minutes:.1f} minutes (scaled)",
        f"data consumed:  paper {paper['data_tb']} TB  ours {campaign.total_data_gb:.2f} GB (scaled)",
        *campaign.summary_rows(),
    ]
    data = {
        "minutes": campaign.total_minutes,
        "data_gb": campaign.total_data_gb,
        "operators": campaign.operators,
        "countries": countries,
    }
    if reduce:
        data["reduce_stats"] = dict(campaign.reduction.stats)
    return ExperimentResult("table1", "campaign statistics (Table 1)", rows, data)
