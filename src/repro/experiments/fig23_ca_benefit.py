"""Fig. 23 (appendix 10.5) — carrier-aggregation benefit for T-Mobile.

T-Mobile combines n41 and n25 channels into progressively wider
aggregates; CA pushes the average DL throughput to ~1.3 Gbps with peaks
near 1.4 Gbps.
"""

from __future__ import annotations

import numpy as np

from repro import papertargets as targets
from repro.experiments.base import ExperimentResult
from repro.operators.profiles import US_PROFILES
from repro.ran.ca import CarrierAggregation


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 8.0 if quick else 25.0
    profile = US_PROFILES["Tmb_US"]
    cells = list(profile.cells)
    offsets = list(profile.ca_sinr_offsets_db)
    combos = {
        "n41 100 (no CA)": 1,
        "n41 100+40 (140 MHz)": 2,
        "+ n25 20 (160 MHz)": 3,
        "+ n25 5 (165 MHz)": 4,
    }
    rows: list[str] = []
    data: dict = {}
    for label, n_carriers in combos.items():
        ca = CarrierAggregation(carriers=cells[:n_carriers], sinr_offsets_db=offsets[:n_carriers])
        rng = np.random.default_rng(seed)
        result = ca.simulate_downlink(profile.dl_channel(), duration, rng=rng,
                                      params=profile.sim_params(), operator=profile.operator)
        series = result.throughput_mbps(500.0)
        mean_gbps = result.mean_throughput_mbps / 1000.0
        peak_gbps = float(series.max()) / 1000.0 if series.size else mean_gbps
        data[label] = {"aggregate_mhz": ca.aggregate_bandwidth_mhz,
                       "mean_gbps": mean_gbps, "peak_gbps": peak_gbps}
        rows.append(
            f"{label:22s} ({ca.aggregate_bandwidth_mhz:5.0f} MHz)  "
            f"mean {mean_gbps:5.2f} Gbps  peak {peak_gbps:5.2f} Gbps"
        )
    rows.append(f"paper: CA average up to {targets.FIG23_CA_MEAN_GBPS} Gbps, "
                f"maximum close to {targets.FIG23_CA_MAX_GBPS} Gbps")
    return ExperimentResult("fig23", "T-Mobile CA benefit (Fig. 23)", rows, data)
