"""Fig. 16 — detailed dissection of one BOLA session over V_Sp.

A 5-minute session in a drifting channel: initial high throughput lets
BOLA pick quality 6, the decline drains the buffer and forces quality
oscillations, and the high-variability periods are where the stalls
land.  Reports the figure's annotated metrics (avg quality 5.41, stall
9.96%) plus the lag between throughput drops and ABR reactions.
"""

from __future__ import annotations

import numpy as np

from repro.apps.video import Bola, PAPER_LADDER_MIDBAND, StreamingSession, Video
from repro import papertargets as targets
from repro.experiments.base import ExperimentResult, qoe_channel
from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 120.0 if quick else 300.0
    profile = EU_PROFILES["V_Sp"]
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    channel = qoe_channel(profile, swing_db=5.0, swing_period_s=45.0, mean_offset_db=2.5,
                          event_rate_hz=0.022, event_duration_s=8.0, event_depth_db=32.0).realize(
        duration, mu=cell.mu, rng=rng)
    trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
    capacity = trace.throughput_mbps(50.0)
    video = Video(duration_s=duration - 5.0, chunk_s=4.0, ladder=PAPER_LADDER_MIDBAND)
    session = StreamingSession(video=video, abr=Bola(video.ladder), capacity_mbps=capacity,
                               buffer_capacity_s=12.0).run()
    qoe = session.qoe()

    levels = session.quality_levels
    oscillation = float(np.mean(np.abs(np.diff(levels)))) if levels.size > 1 else 0.0
    stall_chunks = [c for c in session.chunks if c.stall_s > 0]
    tput_60 = trace.throughput_mbps(60.0)

    rows = [
        f"avg quality: paper {targets.FIG16_AVG_QUALITY:4.2f}  measured {qoe.mean_quality_level:4.2f}",
        f"stall time:  paper {targets.FIG16_STALL_PERCENT:5.2f}%  measured {qoe.stall_percentage:5.2f}%",
        f"chunks {qoe.n_chunks}, stall events {qoe.n_stalls}, "
        f"mean |level change| {oscillation:4.2f} (paper: oscillations down to level 0)",
        f"5G throughput during the session: mean {tput_60.mean():6.1f} Mbps, "
        f"min {tput_60.min():6.1f}, max {tput_60.max():6.1f}",
        "stalls co-locate with throughput drops: "
        + ", ".join(f"chunk {c.index} (q{c.level}, {c.stall_s:.1f}s)" for c in stall_chunks[:5]),
    ]
    data = {
        "qoe": qoe,
        "levels": levels,
        "buffer_timeline": session.buffer_timeline_s,
        "tput_60ms": tput_60,
        "oscillation": oscillation,
    }
    return ExperimentResult("fig16", "BOLA session dissection over V_Sp (Fig. 16)", rows, data)
