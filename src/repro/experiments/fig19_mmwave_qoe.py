"""Fig. 19 / §7 — QoE implications of mid-band vs mmWave.

Experiment set (a): the standard 7-level ladder (~400 Mbps average)
streamed while walking over both technologies — mmWave raises bitrates
but pays with stalls.  Set (b): the scaled-up ladder (~1.25 Gbps
average) over mmWave while walking and driving — driving degrades QoE
markedly; the achieved bitrate falls to ~80% of the channel's average
throughput.
"""

from __future__ import annotations

import numpy as np

from repro.apps.video import Bola, PAPER_LADDER_MIDBAND, PAPER_LADDER_MMWAVE, StreamingSession, Video
from repro import papertargets as targets
from repro.experiments.base import ExperimentResult
from repro.experiments.fig18_mmwave_variability import SCENARIOS, _midband_run, _mmwave_run


def _stream(result, video: Video) -> dict:
    capacity = result.throughput_mbps(50.0)
    session = StreamingSession(video=video, abr=Bola(video.ladder), capacity_mbps=capacity,
                               buffer_capacity_s=12.0).run()
    qoe = session.qoe()
    # Effective delivery rate over wall time (playback + stalls): the
    # "average bitrate achieved" §7 compares against the channel mean.
    wall_s = qoe.startup_delay_s + session.playback_s + session.total_stall_s
    delivered_mbps = float(session.chunk_bitrates_mbps.sum() * video.chunk_s / max(wall_s, 1e-9))
    return {
        "norm_bitrate": qoe.normalized_bitrate,
        "bitrate_mbps": qoe.mean_bitrate_mbps,
        "delivered_mbps": delivered_mbps,
        "stall_pct": qoe.stall_percentage,
        "tput_mbps": float(capacity.mean()),
    }


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 25.0 if quick else 120.0
    chunk_s = 1.0  # §7 uses 1 s chunks in both sets
    rows: list[str] = []
    data: dict = {"set_a": {}, "set_b": {}}

    # Set (a): standard ladder, walking, both technologies.
    video_a = Video(duration_s=duration - 5.0, chunk_s=chunk_s, ladder=PAPER_LADDER_MIDBAND)
    walking = SCENARIOS["walking"]
    mid = _stream(_midband_run(duration, walking, seed), video_a)
    mm = _stream(_mmwave_run(duration, walking, seed), video_a)
    data["set_a"] = {"midband": mid, "mmwave": mm}
    rows.append("-- set (a): standard ladder, walking --")
    rows.append(f"mid-band  bitrate {mid['norm_bitrate']:5.3f}  stall {mid['stall_pct']:5.2f}%")
    rows.append(f"mmWave    bitrate {mm['norm_bitrate']:5.3f}  stall {mm['stall_pct']:5.2f}%  "
                "(paper: bitrate gain at the expense of stalls)")

    # Set (b): scaled-up ladder over mmWave, walking vs driving.
    video_b = Video(duration_s=duration - 5.0, chunk_s=chunk_s, ladder=PAPER_LADDER_MMWAVE)
    rows.append("-- set (b): scaled-up ladder, mmWave only --")
    for scenario_name in ("walking", "driving"):
        result = _mmwave_run(duration, SCENARIOS[scenario_name], seed + 3)
        outcome = _stream(result, video_b)
        fraction = outcome["delivered_mbps"] / max(outcome["tput_mbps"], 1e-9)
        outcome["bitrate_tput_fraction"] = fraction
        data["set_b"][scenario_name] = outcome
        rows.append(
            f"mmWave {scenario_name:8s} bitrate {outcome['bitrate_mbps']:7.1f} Mbps  "
            f"stall {outcome['stall_pct']:5.2f}%  bitrate/tput {100 * fraction:5.1f}% "
            + (f"(paper {100 * targets.SEC7_SCALED_LADDER_BITRATE_FRACTION:.1f}%)"
               if scenario_name == "driving" else "")
        )
    return ExperimentResult("fig19", "mid-band vs mmWave QoE (Fig. 19)", rows, data)
