"""Extension — end-to-end latency vs server placement (§2 methodology,
§9 guidance).

The campaign placed servers at the edge precisely because transport
latency would otherwise swamp the PHY component, and the conclusion
turns that into server-placement guidance for cloud providers.  This
experiment sweeps placement tiers over the §4.3 latency models of the
four Fig. 11 operators.
"""

from __future__ import annotations

from repro.core.e2e import E2eLatencyModel, ServerPlacement
from repro.experiments.base import ExperimentResult
from repro.operators.profiles import EU_PROFILES

OPERATORS = ("V_Ge", "T_Ge", "O_Fr", "V_It")


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    rows: list[str] = [
        f"{'operator':10s} {'PHY ms':>8s} " + "".join(
            f"{p.value:>12s}" for p in ServerPlacement)
    ]
    data: dict = {}
    for key in OPERATORS:
        profile = EU_PROFILES[key]
        phy = profile.latency_model()
        per_placement = {
            placement.value: E2eLatencyModel(phy=phy, placement=placement).mean_rtt_ms()
            for placement in ServerPlacement
        }
        data[key] = {"phy_ms": phy.mean_latency_ms(), **per_placement}
        rows.append(
            f"{key:10s} {phy.mean_latency_ms():8.2f} "
            + "".join(f"{per_placement[p.value]:12.2f}" for p in ServerPlacement)
        )
    # The §2 rationale, quantified: PHY share of the edge RTT.
    shares = {key: data[key]["phy_ms"] / data[key]["edge"] for key in OPERATORS}
    rows.append(
        "PHY share of edge RTT: "
        + ", ".join(f"{key} {100 * share:.0f}%" for key, share in shares.items())
        + "   (regional placement dilutes the RAN signal the paper isolates)"
    )
    data["phy_share_edge"] = shares
    return ExperimentResult("ext_e2e", "end-to-end RTT vs server placement (extension)",
                            rows, data)
