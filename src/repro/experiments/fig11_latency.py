"""Fig. 11 — PHY user-plane latency for four European operators.

Channel bandwidth has no bearing; the TDD frame structure does:
DDDSU deployments land near 2-3 ms, DDDDDDDSUU deployments at 5-7 ms,
and BLER > 0 adds a HARQ-retransmission tail.
"""

from __future__ import annotations

import numpy as np

from repro import papertargets as targets
from repro.experiments.base import ExperimentResult
from repro.operators.profiles import EU_PROFILES

FIG11_KEYS = ("V_It", "V_Ge", "O_Fr", "T_Ge")


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    n_samples = 2000 if quick else 20000
    rows: list[str] = []
    data: dict = {}
    rng = np.random.default_rng(seed)
    for key in FIG11_KEYS:
        profile = EU_PROFILES[key]
        model = profile.latency_model()
        bler0 = model.mean_latency_ms(bler_positive=False)
        bler_pos = model.mean_latency_ms(bler_positive=True)
        sampled = model.sample(n_samples, rng=rng)
        data[key] = {
            "pattern": profile.primary_cell.tdd.pattern,
            "bler0_ms": bler0,
            "bler_pos_ms": bler_pos,
            "sampled_mean_ms": float(sampled.mean()),
            "sampled_p95_ms": float(np.percentile(sampled, 95)),
        }
        paper0 = targets.FIG11_LATENCY_MS["bler0"][key]
        paper1 = targets.FIG11_LATENCY_MS["bler_pos"][key]
        rows.append(
            f"{key:6s} [{profile.primary_cell.tdd.pattern:>10s}]  "
            f"BLER=0: paper {paper0:5.2f} ms / model {bler0:5.2f} ms   "
            f"BLER>0: paper {paper1:5.2f} ms / model {bler_pos:5.2f} ms   "
            f"(MC mean {sampled.mean():5.2f}, p95 {np.percentile(sampled, 95):5.2f})"
        )
    rows.append("orderings: DDDDDDDSUU >> DDDSU for every condition; BLER>0 > BLER=0 per operator")
    return ExperimentResult("fig11", "PHY user-plane latency (Fig. 11)", rows, data)
