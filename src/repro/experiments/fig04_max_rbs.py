"""Fig. 4 — maximum RBs allocated by each operator during iPerf runs.

During saturating transfers every operator allocates close to the
configured maximum N_RB of its channel (Table 5.3.2-1), i.e. a single
backlogged UE gets essentially the whole grid.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, dl_trace
from repro.operators.profiles import ALL_PROFILES

#: Operators at each bandwidth, mirroring the figure's x-axis.
FIG4_ORDER = (
    ("Att_US", 40), ("Vzw_US", 60), ("S_Fr", 80), ("V_It", 80), ("V_Ge", 80),
    ("O_Sp_90", 90), ("V_Sp", 90), ("O_Fr", 90), ("T_Ge", 90),
    ("Tmb_US", 100), ("O_Sp_100", 100),
)


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 5.0 if quick else 20.0
    rows: list[str] = []
    data: dict = {}
    for key, bandwidth in FIG4_ORDER:
        profile = ALL_PROFILES[key]
        cell = profile.primary_cell
        trace = dl_trace(profile, duration, seed).scheduled_view()
        max_rb_seen = int(trace.n_prb.max()) if len(trace) else 0
        configured = cell.n_rb
        data[key] = {"bandwidth_mhz": bandwidth, "configured_n_rb": configured,
                     "max_allocated": max_rb_seen,
                     "utilization": max_rb_seen / configured}
        rows.append(
            f"{key:10s} {bandwidth:4d} MHz  configured N_RB {configured:4d}  "
            f"max allocated {max_rb_seen:4d}  ({100 * max_rb_seen / configured:5.1f}%)"
        )
    return ExperimentResult("fig04", "maximum RBs allocated per operator (Fig. 4)", rows, data)
