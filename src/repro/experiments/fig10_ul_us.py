"""Fig. 10 — U.S. PHY UL throughput under good (CQI >= 12) and poor
(CQI < 10) conditions, including the co-active LTE leg.

The NSA punchline: T-Mobile's 100 MHz NR channel delivers *less* UL
than the 4G LTE anchor running alongside it, which is why the operator
routes UL onto LTE (§4.2).
"""

from __future__ import annotations

import numpy as np

from repro import papertargets as targets
from repro.experiments.base import ExperimentResult, paper_vs_measured_row, ul_trace
from repro.operators.profiles import US_PROFILES
from repro.ran.lte import LteCellConfig, simulate_lte_uplink

#: Extra SINR offsets producing the CQI < 10 (poor-coverage) condition.
#: Per operator: how far its poor-coverage spots sit below the good ones
#: differs with deployment density (AT&T's thin 40 MHz C-band coverage
#: degrades the hardest, matching its near-zero 0.3 Mbps paper value).
POOR_OFFSETS_DB = {"Att_US": -17.5, "Vzw_US": -8.5, "Tmb_US": -11.0}


def _lte_leg_mbps(profile, seed: int, duration_s: float, extra_offset_db: float) -> float:
    """Mean UL throughput of the LTE anchor co-active with the NR leg."""
    rng = np.random.default_rng(seed + 91)
    cell = profile.primary_cell
    channel = profile.ul_channel(extra_offset_db).realize(duration_s, mu=cell.mu, rng=rng)
    sinr = channel.sinr_db
    slots_per_sub = max(1, int(round(1.0 / cell.slot_ms)))
    n_sub = sinr.size // slots_per_sub
    sinr_sub = sinr[: n_sub * slots_per_sub].reshape(n_sub, slots_per_sub).mean(axis=1)
    series = simulate_lte_uplink(LteCellConfig(), sinr_sub + profile.lte_ul_offset_db, rng=rng)
    return float(series.mean())


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 8.0 if quick else 30.0
    rows: list[str] = []
    data: dict = {"good": {}, "poor": {}}
    for condition in ("good", "poor"):
        rows.append(f"-- {condition} conditions ({'CQI >= 12' if condition == 'good' else 'CQI < 10'}) --")
        for key in ("Att_US", "Vzw_US", "Tmb_US"):
            profile = US_PROFILES[key]
            offset = 0.0 if condition == "good" else POOR_OFFSETS_DB[key]
            trace = ul_trace(profile, duration, seed, sinr_offset_db=offset)
            measured = trace.mean_throughput_mbps
            data[condition][key] = measured
            rows.append(paper_vs_measured_row(
                key, targets.FIG10_US_UL_MBPS[condition][key], measured, " Mbps"))
        lte = _lte_leg_mbps(US_PROFILES["Tmb_US"], seed, duration,
                            0.0 if condition == "good" else POOR_OFFSETS_DB["Tmb_US"])
        data[condition]["LTE_US"] = lte
        rows.append(paper_vs_measured_row(
            "LTE_US", targets.FIG10_US_UL_MBPS[condition]["LTE_US"], lte, " Mbps"))
    rows.append(
        "takeaway: the LTE leg beats T-Mobile's 100 MHz NR channel for UL in both regimes"
    )
    return ExperimentResult("fig10", "U.S. PHY UL throughput + LTE leg (Fig. 10)", rows, data)
