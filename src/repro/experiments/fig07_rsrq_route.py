"""Fig. 7 (and Fig. 22) — RSRQ along a walking route, V_Sp vs O_Sp.

Walks the same route under two geometric deployments — Vodafone's three
gNBs vs Orange's two (appendix 10.3) — through the TR 38.901 channel
stack, and reports the RSRQ distribution plus the resulting 4-layer
usage.  Reproduces the causal chain: denser deployment -> better RSRQ
-> more 4x4 MIMO -> higher throughput.
"""

from __future__ import annotations

import numpy as np

from repro.channel.handover import A3Handover
from repro.experiments.base import ExperimentResult
from repro.operators.deployment import spain_deployments
from repro.operators.profiles import EU_PROFILES
from repro.ran.amc import RankAdapter
from repro.ran.simulator import simulate_downlink


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    route_length = 500.0 if quick else 600.0
    vodafone, orange, route = spain_deployments(route_length)
    rows: list[str] = []
    data: dict = {}
    for deployment, profile_key in ((vodafone, "V_Sp"), (orange, "O_Sp_100")):
        profile = EU_PROFILES[profile_key]
        rng = np.random.default_rng(seed)
        model = deployment.channel_model()
        realization = model.realize(route.duration_s, mobility=route, rng=rng)
        # Geometry-driven SINRs are physical here, so the neutral rank
        # thresholds apply (the profile biases encode *synthetic*-prior
        # deployments, not this explicit one).
        trace = simulate_downlink(profile.primary_cell, realization, rng=rng,
                                  params=profile.sim_params(rank_ewma_beta=0.3,
                                                            rank_adapter=RankAdapter()))
        rsrq = realization.rsrq_db
        shares = trace.layer_shares()
        # Handover load along the route (A3 rule on the same geometry).
        rx_dbm, interval_s = model.received_power_matrix(
            route.duration_s, route, rng=np.random.default_rng(seed))
        handovers = A3Handover(sample_interval_s=interval_s).apply(rx_dbm)
        data[deployment.name] = {
            "n_sites": deployment.n_sites,
            "rsrq_mean": float(rsrq.mean()),
            "rsrq_p10": float(np.percentile(rsrq, 10)),
            "share_4l": shares.get(4, 0.0),
            "mean_tput_mbps": trace.mean_throughput_mbps,
            "n_handovers": handovers.n_handovers,
        }
        rows.append(
            f"{deployment.name:16s} ({deployment.n_sites} gNBs)  RSRQ mean {rsrq.mean():6.2f} dB  "
            f"p10 {np.percentile(rsrq, 10):6.2f} dB  4L {100 * shares.get(4, 0.0):5.1f}%  "
            f"tput {trace.mean_throughput_mbps:6.1f} Mbps  handovers {handovers.n_handovers}"
        )
    v = data[vodafone.name]
    o = data[orange.name]
    rows.append(
        f"denser deployment advantage: RSRQ {v['rsrq_mean'] - o['rsrq_mean']:+.2f} dB, "
        f"4L share {100 * (v['share_4l'] - o['share_4l']):+.1f} points"
    )
    return ExperimentResult("fig07", "RSRQ along a walking route, 3 vs 2 gNBs (Figs. 7/22)", rows, data)
