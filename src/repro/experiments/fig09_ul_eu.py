"""Fig. 9 — European PHY UL throughput with CQI >= 12.

All well below 120 Mbps: the TDD frame structures reserve far fewer
symbols for UL than DL, and channel bandwidth shows little correlation
with the UL outcome (§4.2).
"""

from __future__ import annotations

import numpy as np

from repro import papertargets as targets
from repro.experiments.base import ExperimentResult, paper_vs_measured_row, ul_trace
from repro.operators.profiles import EU_PROFILES

#: Figure x-axis order: bandwidth ascending.
FIG9_ORDER = ("V_It", "S_Fr", "V_Ge", "T_Ge", "O_Fr", "V_Sp", "O_Sp_90", "O_Sp_100")


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 8.0 if quick else 30.0
    rows: list[str] = []
    data: dict = {}
    for key in FIG9_ORDER:
        profile = EU_PROFILES[key]
        trace = ul_trace(profile, duration, seed)
        measured = trace.mean_throughput_mbps
        data[key] = {"ul_mbps": measured, "bandwidth_mhz": profile.primary_cell.bandwidth_mhz,
                     "ul_symbol_fraction": profile.primary_cell.ul_slot_fraction()}
        rows.append(
            paper_vs_measured_row(key, targets.FIG9_EU_UL_MBPS[key], measured, " Mbps")
            + f"  [BW {profile.primary_cell.bandwidth_mhz} MHz, UL symbols "
            + f"{100 * profile.primary_cell.ul_slot_fraction():4.1f}%]"
        )
    bandwidths = np.array([data[k]["bandwidth_mhz"] for k in FIG9_ORDER], dtype=float)
    uls = np.array([data[k]["ul_mbps"] for k in FIG9_ORDER])
    corr = float(np.corrcoef(bandwidths, uls)[0, 1])
    rows.append(f"bandwidth-vs-UL-throughput correlation: {corr:+.2f} (paper: 'little correlation')")
    data["bandwidth_correlation"] = corr
    return ExperimentResult("fig09", "EU PHY UL throughput, CQI >= 12 (Fig. 9)", rows, data)
