"""Fig. 15 — channel variability implications on application QoE.

Six representative streaming runs over V_It and O_Sp channels: higher
average 5G throughput drives higher normalized bitrate, and higher
joint (MCS, MIMO) variability drives longer stall times.
"""

from __future__ import annotations

import numpy as np

from repro.apps.video import Bola, PAPER_LADDER_MIDBAND, StreamingSession, Video
from repro.core.timeseries import KpiSeries
from repro.core.variability import joint_variability
from repro.experiments.base import ExperimentResult, qoe_channel
from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink

JOINT_SCALE_SLOTS = 300  # 150 ms, as in the figure

#: (profile key, slow-swing dB, drop-event rate Hz, run seed offset) —
#: six representative runs spanning stable (V_It) to unstable (O_Sp_100)
#: conditions; less stable spots also suffer more abrupt drops.
RUNS = (
    ("V_It", 2.5, 0.010, 0),
    ("V_It", 4.0, 0.020, 1),
    ("V_It", 5.0, 0.030, 2),
    ("O_Sp_100", 5.0, 0.040, 3),
    ("O_Sp_100", 6.0, 0.050, 4),
    ("O_Sp_100", 7.0, 0.060, 5),
)


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 60.0 if quick else 180.0
    rows: list[str] = []
    points: list[dict] = []
    for key, swing, event_rate, offset in RUNS:
        profile = EU_PROFILES[key]
        cell = profile.primary_cell
        rng = np.random.default_rng(seed + offset)
        channel = qoe_channel(profile, swing_db=swing, swing_period_s=35.0,
                              mean_offset_db=1.0, event_rate_hz=event_rate,
                              event_depth_db=18.0).realize(duration, mu=cell.mu, rng=rng)
        trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
        capacity = trace.throughput_mbps(50.0)
        video = Video(duration_s=duration - 5.0, chunk_s=4.0, ladder=PAPER_LADDER_MIDBAND)
        session = StreamingSession(video=video, abr=Bola(video.ladder), capacity_mbps=capacity,
                                   buffer_capacity_s=12.0).run()
        qoe = session.qoe()
        mcs = KpiSeries.from_trace_column(trace, "mcs_index").values
        mimo = KpiSeries.from_trace_column(trace, "layers").values
        jv = joint_variability(mcs, mimo, JOINT_SCALE_SLOTS)
        point = {
            "key": key,
            "tput_mbps": trace.mean_throughput_mbps,
            "norm_bitrate": qoe.normalized_bitrate,
            "stall_pct": qoe.stall_percentage,
            "v_mcs": jv.mcs,
            "v_mimo": jv.mimo,
        }
        points.append(point)
        rows.append(
            f"{key:10s} tput {point['tput_mbps']:6.1f} Mbps  "
            f"norm_bitrate {point['norm_bitrate']:5.3f}  stall {point['stall_pct']:5.2f}%  "
            f"V(MCS) {point['v_mcs']:5.2f}  V(MIMO) {point['v_mimo']:5.3f}"
        )
    # Causal checks the figure's arrows express.
    tput = np.array([p["tput_mbps"] for p in points])
    bitrate = np.array([p["norm_bitrate"] for p in points])
    stall = np.array([p["stall_pct"] for p in points])
    instability = np.array([p["v_mcs"] + 10.0 * p["v_mimo"] for p in points])
    corr_bitrate = float(np.corrcoef(tput, bitrate)[0, 1])
    corr_stall = float(np.corrcoef(instability, stall)[0, 1])
    rows.append(f"corr(mean tput, norm bitrate)   = {corr_bitrate:+.2f}  (paper: positive)")
    rows.append(f"corr(channel variability, stall) = {corr_stall:+.2f}  (paper: positive)")
    data = {"points": points, "corr_bitrate": corr_bitrate, "corr_stall": corr_stall}
    return ExperimentResult("fig15", "variability implications on QoE (Fig. 15)", rows, data)
