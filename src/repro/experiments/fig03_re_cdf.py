"""Fig. 3 — CDF of resource elements allocated to the UE (Spain).

The wider 100 MHz channel allocates *more* REs than either 90 MHz
channel — ruling radio-resource allocation out as the cause of its
lower throughput (the allocation would predict the opposite).
REs here are frequency-domain (12 per allocated PRB), matching the
figure's 0-4x10^3 axis.
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import empirical_cdf
from repro.experiments.base import ExperimentResult, dl_trace
from repro.operators.profiles import EU_PROFILES

SPAIN_KEYS = ("O_Sp_100", "O_Sp_90", "V_Sp")


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 8.0 if quick else 30.0
    rows: list[str] = []
    data: dict = {}
    for key in SPAIN_KEYS:
        trace = dl_trace(EU_PROFILES[key], duration, seed).scheduled_view()
        res = trace.n_re
        values, probs = empirical_cdf(res)
        quantiles = {q: float(np.percentile(res, q)) for q in (10, 50, 90)}
        data[key] = {"mean_re": float(res.mean()), "quantiles": quantiles,
                     "cdf": (values[:: max(1, values.size // 200)],
                             probs[:: max(1, probs.size // 200)])}
        rows.append(
            f"{key:10s} REs: mean {res.mean():7.0f}  p10 {quantiles[10]:7.0f}  "
            f"p50 {quantiles[50]:7.0f}  p90 {quantiles[90]:7.0f}"
        )
    rows.append("expected ordering (paper): O_Sp_100 allocates the most REs, the 90 MHz carriers fewer")
    return ExperimentResult("fig03", "RE-allocation CDFs, Spain (Fig. 3)", rows, data)
