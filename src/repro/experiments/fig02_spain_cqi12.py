"""Fig. 2 — Spain DL throughput under good channel conditions (CQI >= 12).

The paper's headline anomaly: Orange's 100 MHz channel loses to both
90 MHz channels by ~37% despite the wider pipe, because of its 64QAM
ceiling and lower MIMO rank (dissected by Figs. 3, 5, 6).
"""

from __future__ import annotations

from repro import papertargets as targets
from repro.experiments.base import ExperimentResult, dl_trace, paper_vs_measured_row
from repro.operators.profiles import EU_PROFILES

SPAIN_KEYS = ("V_Sp", "O_Sp_90", "O_Sp_100")


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 10.0 if quick else 40.0
    rows: list[str] = []
    data: dict = {}
    for key in SPAIN_KEYS:
        trace = dl_trace(EU_PROFILES[key], duration, seed)
        subset = trace.filter_cqi(minimum=12)
        measured = subset.mean_throughput_mbps if len(subset) else float("nan")
        share = len(subset) / len(trace)
        data[key] = {"cqi12_mbps": measured, "cqi12_share": share}
        rows.append(
            paper_vs_measured_row(key, targets.FIG2_SPAIN_CQI12_MBPS[key], measured, " Mbps")
            + f"  (CQI>=12 in {100 * share:4.1f}% of slots)"
        )
    gap = 1.0 - data["O_Sp_100"]["cqi12_mbps"] / data["V_Sp"]["cqi12_mbps"]
    rows.append(f"90-vs-100 MHz gap: paper ~27% (37% the other way), measured {100 * gap:.1f}%")
    data["gap"] = gap
    return ExperimentResult("fig02", "Spain DL throughput with CQI >= 12 (Fig. 2)", rows, data)
