"""§3.2 — the 3GPP TS 38.306 maximum-throughput formula.

Evaluates the formula for every operator configuration and for the two
Spanish bandwidths the paper quotes (1213.44 / 1352.12 Mbps).  The
paper's quoted pair corresponds to a 2-layer, zero-overhead evaluation
(their ratio is exactly 273/245 = the N_RB ratio); we report the
standard 4-layer evaluation alongside, and the TDD-adjusted attainable
ceiling the measured means should be compared to.
"""

from __future__ import annotations

from repro import papertargets as targets
from repro.core.throughput import CarrierSpec, max_throughput_mbps, tdd_adjusted_throughput_mbps
from repro.experiments.base import ExperimentResult
from repro.nr.mcs import Modulation
from repro.operators.profiles import ALL_PROFILES


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    rows: list[str] = []
    data: dict = {}

    # The paper's quoted values: 2 layers, zero overhead.
    for label, bandwidth in (("V_Sp_90MHz", 90), ("O_Sp_100MHz", 100)):
        paper_value = targets.EQ32_PAPER_VALUES_MBPS[label]
        two_layer = max_throughput_mbps(
            CarrierSpec(bandwidth, layers=2, max_modulation=Modulation.QAM256, overhead=0.0))
        four_layer = max_throughput_mbps(
            CarrierSpec(bandwidth, layers=4, max_modulation=Modulation.QAM256))
        data[label] = {"paper": paper_value, "two_layer_no_oh": two_layer, "four_layer": four_layer}
        rows.append(
            f"{label:12s} paper {paper_value:8.2f}  2-layer/no-OH {two_layer:8.2f} "
            f"({100 * (two_layer / paper_value - 1):+4.1f}%)  standard 4-layer {four_layer:8.2f} Mbps"
        )
    ratio = data["O_Sp_100MHz"]["two_layer_no_oh"] / data["V_Sp_90MHz"]["two_layer_no_oh"]
    rows.append(f"100/90 MHz ratio: formula {ratio:.4f}  N_RB ratio 273/245 = {273 / 245:.4f}  "
                f"paper pair {targets.EQ32_PAPER_VALUES_MBPS['O_Sp_100MHz'] / targets.EQ32_PAPER_VALUES_MBPS['V_Sp_90MHz']:.4f}")
    data["ratio"] = ratio

    rows.append("-- per-operator theoretical maxima (standard evaluation) --")
    data["operators"] = {}
    for key, profile in ALL_PROFILES.items():
        specs = [
            CarrierSpec(
                cell.bandwidth_mhz, scs_khz=cell.scs_khz, layers=cell.max_layers,
                max_modulation=cell.max_modulation, fr2=cell.fr2,
                n_rb_override=cell.n_rb_override,
            )
            for cell in profile.cells
        ]
        total = max_throughput_mbps(specs)
        primary = profile.primary_cell
        attainable = tdd_adjusted_throughput_mbps(specs[0], primary.dl_slot_fraction()) \
            if primary.tdd is not None else specs[0].throughput_mbps()
        data["operators"][key] = {"formula_mbps": total, "primary_tdd_adjusted_mbps": attainable}
        rows.append(f"{key:10s} formula {total:8.1f} Mbps "
                    f"(primary CC TDD-adjusted ceiling {attainable:8.1f} Mbps)")
    return ExperimentResult("eq32", "TS 38.306 maximum-throughput formula (§3.2)", rows, data)
