"""Fig. 14 — variability across locations and users within one cell.

Two UEs at different line-of-sight distances from the gNB (A at 45 m,
B at 117 m), measured sequentially and then simultaneously:

- sequentially each UE gets nearly all RBs and ~580-600 Mbps; B (farther)
  shows slightly lower throughput and higher MCS/MIMO variability;
- simultaneously the scheduler halves each UE's RB share and throughput
  while the per-UE channel variability stays unchanged — resource
  competition, not channel degradation.

The two positions are encoded as calibrated radio environments: B's
longer path means a slightly lower mean SINR and stronger fluctuations
(higher path loss -> deeper relative fades), exactly the paper's
reading of the 2-D variability plot.
"""

from __future__ import annotations

import numpy as np

from repro.channel.model import SyntheticChannel
from repro.core.runner import SessionTask, run_tasks
from repro.core.timeseries import KpiSeries
from repro.core.variability import joint_variability
from repro.experiments.base import ExperimentResult
from repro.operators.profiles import US_PROFILES
from repro.ran.scheduler import RoundRobinScheduler
from repro.ran.simulator import simulate_downlink, simulate_downlink_multi

DIST_A_M = 45.0
DIST_B_M = 117.0
JOINT_SCALE_SLOTS = 120  # 60 ms, matching the figure's granularity

#: Radio environments of the two sample locations (same cell, LOS).
LOCATION_CHANNELS = {
    "A": SyntheticChannel(mean_sinr_db=23.6, fast_sigma_db=1.6, fast_coherence_slots=40.0,
                          slow_sigma_db=1.2, slow_coherence_slots=900.0),
    "B": SyntheticChannel(mean_sinr_db=23.2, fast_sigma_db=2.6, fast_coherence_slots=35.0,
                          slow_sigma_db=1.8, slow_coherence_slots=800.0),
}


def _stats(trace) -> dict:
    mcs = KpiSeries.from_trace_column(trace, "mcs_index").values
    mimo = KpiSeries.from_trace_column(trace, "layers").values
    jv = joint_variability(mcs, mimo, JOINT_SCALE_SLOTS)
    sched = trace.scheduled_view()
    return {
        "tput_mbps": trace.mean_throughput_mbps,
        "mean_rbs": float(sched.n_prb.mean()) if len(sched) else 0.0,
        "v_mcs": jv.mcs,
        "v_mimo": jv.mimo,
    }


def _sequential_session(label: str, duration_s: float, seed: int):
    """One UE alone in the cell (module-level so it can cross processes)."""
    profile = US_PROFILES["Vzw_US"]
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    channel = LOCATION_CHANNELS[label].realize(duration_s, mu=cell.mu, rng=rng)
    return simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())


def run(seed: int = 2024, quick: bool = True, jobs: int | str = 1,
        store=None, executor=None) -> ExperimentResult:
    duration = 8.0 if quick else 25.0
    profile = US_PROFILES["Vzw_US"]
    cell = profile.primary_cell
    params = profile.sim_params()
    rows: list[str] = []
    data: dict = {"sequential": {}, "simultaneous": {}}

    # Sequential: each UE alone in the cell (independent sessions).
    manifest = [
        SessionTask(fn=_sequential_session,
                    kwargs={"label": label, "duration_s": duration},
                    seed=seed + offset, label=label)
        for offset, label in enumerate(("A", "B"))
    ]
    for label, trace in zip(("A", "B"), run_tasks(manifest, jobs=jobs, store=store, executor=executor)):
        data["sequential"][label] = _stats(trace)

    # Simultaneous: both UEs share the cell through the scheduler.
    rng = np.random.default_rng(seed + 7)
    channels = [LOCATION_CHANNELS[label].realize(duration, mu=cell.mu, rng=rng)
                for label in ("A", "B")]
    traces = simulate_downlink_multi(cell, channels, RoundRobinScheduler(), rng=rng, params=params)
    for label, trace in zip(("A", "B"), traces):
        data["simultaneous"][label] = _stats(trace)

    for mode in ("sequential", "simultaneous"):
        for label in ("A", "B"):
            s = data[mode][label]
            dist = DIST_A_M if label == "A" else DIST_B_M
            rows.append(
                f"{mode:13s} UE {label} ({dist:5.0f} m)  tput {s['tput_mbps']:6.1f} Mbps  "
                f"RBs {s['mean_rbs']:5.1f}  V(MCS) {s['v_mcs']:5.2f}  V(MIMO) {s['v_mimo']:5.3f}"
            )
    ratio_tput = (data["simultaneous"]["A"]["tput_mbps"]
                  / max(data["sequential"]["A"]["tput_mbps"], 1e-9))
    ratio_rbs = (data["simultaneous"]["A"]["mean_rbs"]
                 / max(data["sequential"]["A"]["mean_rbs"], 1e-9))
    rows.append(
        f"simultaneous/sequential (UE A): tput x{ratio_tput:.2f}, RBs x{ratio_rbs:.2f} "
        "(paper: both roughly halve; variability unchanged)"
    )
    data["tput_ratio"] = ratio_tput
    data["rb_ratio"] = ratio_rbs
    return ExperimentResult("fig14", "multi-location / multi-user study (Fig. 14)", rows, data)
