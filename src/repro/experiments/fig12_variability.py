"""Fig. 12 — scaled variability V(t) of throughput, MCS and MIMO layers
across time scales (0.5 ms ... 2 s) for four carriers.

Expected shape: V(t) decreasing in t and stabilizing around 0.2-0.5 s;
O_Sp_100 the most variable on every KPI, V_It the least; MIMO-layer
variability an order of magnitude below MCS variability.

With ``reduce=True`` the per-scale V(t) accumulators stream out of the
workers as sketches instead of whole traces; for a single session per
carrier the pooled estimate collapses to ``scaled_variability`` exactly,
so the printed rows are byte-identical to the materializing path.
"""

from __future__ import annotations

import numpy as np

from repro.core.runner import SessionTask, run_tasks
from repro.core.timeseries import KpiSeries
from repro.core.variability import variability_profile
from repro.experiments.base import ExperimentResult, dl_trace
from repro.operators.profiles import EU_PROFILES

FIG12_KEYS = ("O_Sp_100", "O_Sp_90", "V_Sp", "V_It")
_KPI_NAMES = ("throughput", "mcs", "mimo")
#: Scales the printed summary reports (full profiles are in ``data``).
REPORT_SCALES_MS = (0.5, 8.0, 128.0, 2048.0)


def run(seed: int = 2024, quick: bool = True, jobs: int | str = 1,
        store=None, executor=None, reduce: bool = False) -> ExperimentResult:
    duration = 20.0 if quick else 60.0
    rows: list[str] = []
    data: dict = {}
    manifest = [
        SessionTask(fn=dl_trace,
                    kwargs={"profile": EU_PROFILES[key], "duration_s": duration},
                    seed=seed, label=key)
        for key in FIG12_KEYS
    ]
    if reduce:
        from repro.core.reduce import CampaignReduction

        reduction = CampaignReduction(group_mode="label",
                                      variability_kpis=_KPI_NAMES,
                                      max_scale_ms=2048.0)
        sketch = run_tasks(manifest, jobs=jobs, store=store, executor=executor,
                           reduce=reduction)
        for key in FIG12_KEYS:
            group = sketch.groups[key]
            data[key] = {}
            for name in _KPI_NAMES:
                scales, values = group.variability[name].profile()
                data[key][name] = {"scales_ms": scales, "v": values}
        data["reduce_stats"] = dict(reduction.stats)
    else:
        traces = dict(zip(FIG12_KEYS, run_tasks(manifest, jobs=jobs, store=store,
                                                executor=executor)))
        for key in FIG12_KEYS:
            trace = traces[key]
            slot_ms = trace.slot_duration_ms
            kpis = {
                "throughput": trace.throughput_mbps(slot_ms),
                "mcs": KpiSeries.from_trace_column(trace, "mcs_index").values,
                "mimo": KpiSeries.from_trace_column(trace, "layers").values,
            }
            data[key] = {}
            for name, series in kpis.items():
                scales, values = variability_profile(series, slot_ms, max_scale_ms=2048.0)
                data[key][name] = {"scales_ms": scales, "v": values}

    for key in FIG12_KEYS:
        summary = []
        for name in _KPI_NAMES:
            profile_data = data[key][name]
            picks = []
            for target in REPORT_SCALES_MS:
                idx = int(np.argmin(np.abs(profile_data["scales_ms"] - target)))
                picks.append(profile_data["v"][idx])
            summary.append(f"{name} V@[0.5ms,8ms,128ms,2s] = "
                           + "/".join(f"{v:7.2f}" for v in picks))
        rows.append(f"{key:10s} " + " | ".join(summary))

    # Ordering check at the stabilized scale (128 ms).
    def v_at(key: str, kpi: str, scale: float) -> float:
        d = data[key][kpi]
        idx = int(np.argmin(np.abs(d["scales_ms"] - scale)))
        return float(d["v"][idx])

    order = sorted(FIG12_KEYS, key=lambda k: -v_at(k, "throughput", 128.0))
    rows.append(f"throughput-variability ordering at 128 ms: {' > '.join(order)} "
                "(paper: O_Sp_100 most, V_It least)")
    data["ordering_128ms"] = order
    return ExperimentResult("fig12", "V(t) across time scales (Fig. 12)", rows, data)
