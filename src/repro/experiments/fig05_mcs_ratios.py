"""Fig. 5 — modulation-order usage shares for the Spanish operators.

Despite 256QAM being *configured* on the 90 MHz carriers, the highest
order is only used in ~8% of scheduled slots; 64QAM dominates all three
carriers, and the 100 MHz carrier (64QAM ceiling) never uses 256QAM.
"""

from __future__ import annotations

from repro import papertargets as targets
from repro.experiments.base import ExperimentResult, dl_trace
from repro.operators.profiles import EU_PROFILES

SPAIN_KEYS = ("O_Sp_90", "O_Sp_100", "V_Sp")
ORDER_NAMES = {2: "QPSK", 4: "16QAM", 6: "64QAM", 8: "256QAM"}


def run(seed: int = 2024, quick: bool = True) -> ExperimentResult:
    duration = 10.0 if quick else 40.0
    rows: list[str] = []
    data: dict = {}
    for key in SPAIN_KEYS:
        trace = dl_trace(EU_PROFILES[key], duration, seed)
        shares = trace.modulation_shares()
        named = {ORDER_NAMES[o]: 100 * s for o, s in shares.items()}
        data[key] = named
        paper = targets.FIG5_MODULATION_SHARES.get(key, {})
        rows.append(
            f"{key:10s} 256QAM {named.get('256QAM', 0.0):5.2f}% (paper {paper.get('qam256', 0.0):5.2f}%)  "
            f"64QAM {named.get('64QAM', 0.0):5.1f}% (paper {paper.get('qam64', 0.0):5.1f}%)  "
            f"16QAM {named.get('16QAM', 0.0):5.2f}%  QPSK {named.get('QPSK', 0.0):5.2f}%"
        )
    return ExperimentResult("fig05", "modulation-scheme shares, Spain (Fig. 5)", rows, data)
