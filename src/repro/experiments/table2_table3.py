"""Tables 2 & 3 — network configuration dumps.

These tables are configuration, not measurement: the experiment prints
each profile's 3GPP parameters exactly as encoded (band, SCS, duplexing,
bandwidth, N_RB, CA) so they can be eyeballed against the paper's
tables; the bench asserts the N_RB values match TS 38.101-1 Table
5.3.2-1 and the table rows verbatim.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.nr.bands import Duplexing
from repro.operators.profiles import EU_PROFILES, US_PROFILES

#: Expected (bandwidth MHz -> N_RB) pairs from row 7 of Tables 2/3.
EXPECTED_NRB = {100: 273, 90: 245, 80: 217, 60: 162, 40: 106, 20: 51, 5: 11, 10: 52}


def _profile_rows(profiles: dict) -> list[str]:
    rows = []
    for key, profile in profiles.items():
        for cell in profile.cells:
            duplexing = cell.band.duplexing.value
            tdd = cell.tdd.pattern if cell.tdd is not None else "-"
            rows.append(
                f"{key:10s} {cell.band_name:5s} {duplexing:4s} "
                f"SCS={cell.scs_khz:3d}kHz  BW={cell.bandwidth_mhz:4d}MHz  "
                f"N_RB={cell.n_rb:4d}  maxmod={cell.max_modulation.name:7s}  TDD={tdd}  "
                f"CA={'yes' if profile.uses_ca else 'no'}"
            )
    return rows


def run(seed: int = 2024, quick: bool = True, which: str = "table2") -> ExperimentResult:
    profiles = EU_PROFILES if which == "table2" else US_PROFILES
    rows = _profile_rows(profiles)
    data = {}
    for key, profile in profiles.items():
        data[key] = [
            {
                "band": c.band_name,
                "scs_khz": c.scs_khz,
                "bandwidth_mhz": c.bandwidth_mhz,
                "n_rb": c.n_rb,
                "duplexing": c.band.duplexing.value,
                "max_modulation": c.max_modulation.name,
                "ca": profile.uses_ca,
            }
            for c in profile.cells
        ]
    title = "EU network configs (Table 2)" if which == "table2" else "U.S. network configs (Table 3)"
    return ExperimentResult(which, title, rows, data)
