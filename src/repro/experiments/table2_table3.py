"""Tables 2 & 3 — network configuration dumps.

These tables are configuration, not measurement: the experiment prints
each profile's 3GPP parameters exactly as encoded (band, SCS, duplexing,
bandwidth, N_RB, CA) so they can be eyeballed against the paper's
tables; the bench asserts the N_RB values match TS 38.101-1 Table
5.3.2-1 and the table rows verbatim.
"""

from __future__ import annotations

from repro.core.runner import SessionTask, run_tasks
from repro.experiments.base import ExperimentResult
from repro.nr.bands import Duplexing
from repro.operators.profiles import EU_PROFILES, US_PROFILES

#: Expected (bandwidth MHz -> N_RB) pairs from row 7 of Tables 2/3.
EXPECTED_NRB = {100: 273, 90: 245, 80: 217, 60: 162, 40: 106, 20: 51, 5: 11, 10: 52}


def _profile_entry(key: str, profile) -> tuple[list[str], list[dict]]:
    """Printable rows plus machine-readable records of one profile."""
    rows = []
    for cell in profile.cells:
        duplexing = cell.band.duplexing.value
        tdd = cell.tdd.pattern if cell.tdd is not None else "-"
        rows.append(
            f"{key:10s} {cell.band_name:5s} {duplexing:4s} "
            f"SCS={cell.scs_khz:3d}kHz  BW={cell.bandwidth_mhz:4d}MHz  "
            f"N_RB={cell.n_rb:4d}  maxmod={cell.max_modulation.name:7s}  TDD={tdd}  "
            f"CA={'yes' if profile.uses_ca else 'no'}"
        )
    records = [
        {
            "band": c.band_name,
            "scs_khz": c.scs_khz,
            "bandwidth_mhz": c.bandwidth_mhz,
            "n_rb": c.n_rb,
            "duplexing": c.band.duplexing.value,
            "max_modulation": c.max_modulation.name,
            "ca": profile.uses_ca,
        }
        for c in profile.cells
    ]
    return rows, records


def run(seed: int = 2024, quick: bool = True, which: str = "table2",
        jobs: int | str = 1, store=None, executor=None) -> ExperimentResult:
    profiles = EU_PROFILES if which == "table2" else US_PROFILES
    manifest = [
        SessionTask(fn=_profile_entry, kwargs={"key": key, "profile": profile}, label=key)
        for key, profile in profiles.items()
    ]
    rows: list[str] = []
    data: dict = {}
    for key, (profile_rows, records) in zip(profiles, run_tasks(manifest, jobs=jobs, store=store, executor=executor)):
        rows.extend(profile_rows)
        data[key] = records
    title = "EU network configs (Table 2)" if which == "table2" else "U.S. network configs (Table 3)"
    return ExperimentResult(which, title, rows, data)
