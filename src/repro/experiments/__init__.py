"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes ``run(seed=..., quick=...) ->
ExperimentResult``; the registry maps experiment ids (``"fig01"``,
``"table2"``, ``"eq32"``, ...) to those callables.  ``quick=True``
shortens simulation durations for CI; the printed rows are the same
quantities the paper reports.

Usage::

    from repro.experiments import run_experiment, EXPERIMENT_IDS
    result = run_experiment("fig02")
    print(result.render())
"""

from __future__ import annotations

import importlib
import inspect

from repro.experiments.base import ExperimentResult

#: Experiment id -> implementing module (lazy-imported).
_MODULES = {
    "table1": "repro.experiments.table1",
    "table2": "repro.experiments.table2_table3",
    "table3": "repro.experiments.table2_table3",
    "fig01": "repro.experiments.fig01_dl_throughput",
    "fig02": "repro.experiments.fig02_spain_cqi12",
    "fig03": "repro.experiments.fig03_re_cdf",
    "fig04": "repro.experiments.fig04_max_rbs",
    "fig05": "repro.experiments.fig05_mcs_ratios",
    "fig06": "repro.experiments.fig06_mimo_layers",
    "fig07": "repro.experiments.fig07_rsrq_route",
    "fig08": "repro.experiments.fig08_spider",
    "fig09": "repro.experiments.fig09_ul_eu",
    "fig10": "repro.experiments.fig10_ul_us",
    "fig11": "repro.experiments.fig11_latency",
    "fig12": "repro.experiments.fig12_variability",
    "fig13": "repro.experiments.fig13_timeseries",
    "fig14": "repro.experiments.fig14_multiuser",
    "fig15": "repro.experiments.fig15_variability_qoe",
    "fig16": "repro.experiments.fig16_streaming_trace",
    "fig17": "repro.experiments.fig17_chunk_length",
    "fig18": "repro.experiments.fig18_mmwave_variability",
    "fig19": "repro.experiments.fig19_mmwave_qoe",
    "fig23": "repro.experiments.fig23_ca_benefit",
    "fig24": "repro.experiments.fig24_abr_comparison",
    "eq32": "repro.experiments.eq32_max_throughput",
    "ext_aware": "repro.experiments.ext_network_aware",
    "ext_predict": "repro.experiments.ext_prediction",
    "ext_e2e": "repro.experiments.ext_e2e_latency",
}

EXPERIMENT_IDS = tuple(sorted(set(_MODULES)))


def supports_reduce(experiment_id: str) -> bool:
    """Whether an experiment implements the streaming-reduction path."""
    if experiment_id not in _MODULES:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {EXPERIMENT_IDS}")
    module = importlib.import_module(_MODULES[experiment_id])
    return "reduce" in inspect.signature(module.run).parameters


def run_experiment(experiment_id: str, seed: int = 2024, quick: bool = True,
                   jobs: int | str = 1, store=None, executor=None,
                   reduce: bool = False) -> ExperimentResult:
    """Run one experiment by id.

    ``jobs``, ``store`` and ``executor`` are forwarded to experiments
    whose session loops run on the parallel runner
    (:mod:`repro.core.runner`); others ignore them.  ``store`` (a
    :class:`repro.store.TraceStore`) memoizes sessions across runs —
    results are identical with or without it.  ``executor`` (a
    :class:`repro.core.runner.CampaignExecutor`) shares one warm worker
    pool across experiments instead of forking a fresh pool per call.
    ``reduce=True`` asks the experiment to fold sessions into streaming
    KPI sketches instead of materializing traces (see
    :mod:`repro.core.reduce`); experiments without a reduction path
    raise ``ValueError`` — probe with :func:`supports_reduce`.
    """
    if experiment_id not in _MODULES:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {EXPERIMENT_IDS}")
    module = importlib.import_module(_MODULES[experiment_id])
    kwargs: dict = {"seed": seed, "quick": quick}
    if experiment_id in ("table2", "table3"):
        kwargs["which"] = experiment_id
    parameters = inspect.signature(module.run).parameters
    if "jobs" in parameters:
        kwargs["jobs"] = jobs
    if "store" in parameters and store is not None:
        kwargs["store"] = store
    if "executor" in parameters and executor is not None:
        kwargs["executor"] = executor
    if reduce:
        if "reduce" not in parameters:
            raise ValueError(
                f"experiment {experiment_id!r} has no streaming-reduction path")
        kwargs["reduce"] = True
    return module.run(**kwargs)


__all__ = ["ExperimentResult", "EXPERIMENT_IDS", "run_experiment", "supports_reduce"]
