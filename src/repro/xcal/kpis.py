"""Per-trace KPI summaries — the one-stop dissection of a capture.

Most of the paper's per-operator rows combine the same handful of
aggregates: mean throughput, BLER, modulation shares, layer shares,
conditional (CQI >= 12) means and multi-scale variability.
:func:`summarize_trace` computes them all from one
:class:`~repro.xcal.records.SlotTrace`, and
:func:`compare_traces` lines several traces up side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.timeseries import KpiSeries
from repro.core.variability import scaled_variability
from repro.xcal.records import SlotTrace

ORDER_NAMES = {2: "QPSK", 4: "16QAM", 6: "64QAM", 8: "256QAM"}


@dataclass(frozen=True)
class TraceSummary:
    """The paper-style KPI digest of one trace."""

    label: str
    duration_s: float
    mean_tput_mbps: float
    cqi12_tput_mbps: float
    cqi12_share: float
    bler: float
    mean_mcs: float
    mean_layers: float
    modulation_shares: dict[str, float] = field(default_factory=dict)
    layer_shares: dict[int, float] = field(default_factory=dict)
    tput_variability_128ms: float = float("nan")
    mean_rsrq_db: float = float("nan")
    mean_sinr_db: float = float("nan")

    def row(self) -> str:
        """One printable comparison row."""
        qam256 = self.modulation_shares.get("256QAM", 0.0)
        four_layer = self.layer_shares.get(4, 0.0)
        return (
            f"{self.label:12s} tput {self.mean_tput_mbps:7.1f} Mbps "
            f"(CQI>=12: {self.cqi12_tput_mbps:7.1f})  BLER {100 * self.bler:5.2f}%  "
            f"MCS {self.mean_mcs:5.1f}  layers {self.mean_layers:4.2f}  "
            f"4L {100 * four_layer:5.1f}%  256QAM {100 * qam256:5.2f}%  "
            f"V(128ms) {self.tput_variability_128ms:7.2f}"
        )


def summarize_trace(trace: SlotTrace, label: str | None = None) -> TraceSummary:
    """Compute the full KPI digest of a trace."""
    label = label if label is not None else (trace.metadata.carrier_name or "trace")
    scheduled = trace.scheduled_view()
    cqi12 = trace.filter_cqi(minimum=12)
    slot_tput = trace.throughput_mbps(trace.slot_duration_ms)
    block_128ms = max(1, int(round(128.0 / trace.slot_duration_ms)))
    mcs_series = KpiSeries.from_trace_column(trace, "mcs_index").values
    layers_series = KpiSeries.from_trace_column(trace, "layers").values
    return TraceSummary(
        label=label,
        duration_s=trace.duration_s,
        mean_tput_mbps=trace.mean_throughput_mbps,
        cqi12_tput_mbps=cqi12.mean_throughput_mbps if len(cqi12) else float("nan"),
        cqi12_share=len(cqi12) / max(len(trace), 1),
        bler=trace.bler,
        mean_mcs=float(mcs_series.mean()) if mcs_series.size else float("nan"),
        mean_layers=float(layers_series.mean()) if layers_series.size else float("nan"),
        modulation_shares={ORDER_NAMES.get(order, str(order)): share
                           for order, share in trace.modulation_shares().items()},
        layer_shares=trace.layer_shares(),
        tput_variability_128ms=scaled_variability(slot_tput, block_128ms),
        mean_rsrq_db=float(trace.rsrq_db.mean()) if len(trace) else float("nan"),
        mean_sinr_db=float(trace.sinr_db.mean()) if len(trace) else float("nan"),
    )


def compare_traces(traces: dict[str, SlotTrace]) -> list[str]:
    """Side-by-side digest rows for several traces."""
    if not traces:
        raise ValueError("traces must be non-empty")
    return [summarize_trace(trace, label).row() for label, trace in traces.items()]
