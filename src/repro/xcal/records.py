"""Slot-level KPI records — the XCAL-equivalent trace schema.

One :class:`SlotTrace` holds the per-slot KPIs for a single carrier of a
single run, as a struct of numpy arrays (fast to slice, trivially
convertible to CSV rows).  Fields mirror what the paper extracts from
XCAL captures: grant size (RBs/REs), MCS index and modulation order,
MIMO layers, CQI, SINR/RSRP/RSRQ, BLER events, and delivered bits.
"""

from __future__ import annotations

import types
import typing
from dataclasses import dataclass, field, fields as dataclass_fields

import numpy as np

from repro.nr.numerology import Numerology, slot_duration_ms

#: Columns of a slot trace, in serialization order.
TRACE_COLUMNS = (
    "slot",
    "time_ms",
    "slot_type",       # 0=DL, 1=UL, 2=special
    "scheduled",       # bool: UE received a grant this slot
    "n_prb",
    "n_re",
    "mcs_index",
    "modulation_order",
    "layers",
    "tbs_bits",
    "delivered_bits",  # 0 when the TB failed decoding this slot
    "is_retx",
    "error",           # bool: decode failure this slot
    "cqi",
    "dci_format",      # 0 -> 1_0, 1 -> 1_1
    "sinr_db",
    "rsrp_dbm",
    "rsrq_db",
)

_INT_COLUMNS = {
    "slot", "slot_type", "n_prb", "n_re", "mcs_index", "modulation_order",
    "layers", "tbs_bits", "delivered_bits", "cqi", "dci_format",
}
_BOOL_COLUMNS = {"scheduled", "is_retx", "error"}


_METADATA_FIELD_TYPES: dict[str, tuple[type, bool]] | None = None


def metadata_field_types() -> dict[str, tuple[type, bool]]:
    """``field name -> (base type, is_optional)`` for :class:`TraceMetadata`.

    Derived from the dataclass annotations themselves, so adding a new
    int/float metadata field automatically round-trips through every
    serializer with its declared type instead of degrading to ``str``.
    """
    global _METADATA_FIELD_TYPES
    if _METADATA_FIELD_TYPES is None:
        hints = typing.get_type_hints(TraceMetadata)
        resolved: dict[str, tuple[type, bool]] = {}
        for f in dataclass_fields(TraceMetadata):
            hint = hints[f.name]
            optional = False
            if typing.get_origin(hint) in (typing.Union, types.UnionType):
                args = typing.get_args(hint)
                bases = [a for a in args if a is not type(None)]
                optional = len(bases) < len(args)
                hint = bases[0] if bases else str
            resolved[f.name] = (hint, optional)
        _METADATA_FIELD_TYPES = resolved
    return _METADATA_FIELD_TYPES


def coerce_metadata_value(value, base: type, optional: bool):
    """Cast one metadata value to its declared field type.

    Accepts both already-typed values (JSON/npz) and strings (CSV
    ``key=value`` headers); ``None``/empty/"None" map to ``None`` for
    optional fields.
    """
    if optional and (value is None or value in ("", "None")):
        return None
    if base is bool:  # before int: bool is an int subclass
        return value if isinstance(value, bool) else str(value) in ("1", "True", "true")
    if base is int:
        return int(float(value)) if isinstance(value, str) else int(value)
    if base is float:
        return float(value)
    if base is str:
        return str(value)
    return value


@dataclass(frozen=True)
class TraceMetadata:
    """Run-level metadata attached to a trace.

    Field values are coerced to their declared types at construction
    (an ``int`` bandwidth becomes ``float``, a stringly seed becomes
    ``int``), so a metadata object carries identical values whether it
    came from the simulator or from a deserialized trace — serialized
    bytes are stable across cache round-trips.
    """

    operator: str = "unknown"
    country: str = "unknown"
    carrier_name: str = "cc0"
    direction: str = "DL"
    bandwidth_mhz: float = 0.0
    scs_khz: int = 30
    mobility: str = "stationary"
    seed: int | None = None

    def __post_init__(self) -> None:
        for name, (base, optional) in metadata_field_types().items():
            value = getattr(self, name)
            coerced = coerce_metadata_value(value, base, optional)
            if coerced is not value:
                object.__setattr__(self, name, coerced)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}


@dataclass
class SlotTrace:
    """Struct-of-arrays slot-level KPI trace.

    All arrays share the same length (one entry per slot, including slots
    in which the UE was not scheduled — those carry zero grants, matching
    how XCAL logs idle slots).
    """

    slot: np.ndarray
    time_ms: np.ndarray
    slot_type: np.ndarray
    scheduled: np.ndarray
    n_prb: np.ndarray
    n_re: np.ndarray
    mcs_index: np.ndarray
    modulation_order: np.ndarray
    layers: np.ndarray
    tbs_bits: np.ndarray
    delivered_bits: np.ndarray
    is_retx: np.ndarray
    error: np.ndarray
    cqi: np.ndarray
    dci_format: np.ndarray
    sinr_db: np.ndarray
    rsrp_dbm: np.ndarray
    rsrq_db: np.ndarray
    mu: Numerology = Numerology.MU_1
    metadata: TraceMetadata = field(default_factory=TraceMetadata)

    def __post_init__(self) -> None:
        n = self.slot.size
        for name in TRACE_COLUMNS:
            if getattr(self, name).size != n:
                raise ValueError(f"column {name!r} has length {getattr(self, name).size}, expected {n}")

    # ------------------------------------------------------------------ #
    # Basics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.slot.size)

    @property
    def slot_duration_ms(self) -> float:
        return slot_duration_ms(self.mu)

    @property
    def duration_s(self) -> float:
        """Trace duration in seconds."""
        return len(self) * self.slot_duration_ms * 1e-3

    def column(self, name: str) -> np.ndarray:
        if name not in TRACE_COLUMNS:
            raise KeyError(f"unknown trace column {name!r}")
        return getattr(self, name)

    def fill(self, where, **values) -> None:
        """Bulk column write: ``column[where] = value`` for each keyword.

        ``where`` is any numpy index (slice, integer array, boolean
        mask); each value may be a scalar or an array broadcastable to
        the selection.  One call replaces a stack of per-column
        element-wise writes in the simulator's hot loop.
        """
        for name, value in values.items():
            self.column(name)[where] = value

    # ------------------------------------------------------------------ #
    # Derived KPIs
    # ------------------------------------------------------------------ #
    @property
    def total_bits(self) -> int:
        """Total bits delivered to the MAC."""
        return int(self.delivered_bits.sum())

    @property
    def mean_throughput_mbps(self) -> float:
        """Average PHY throughput over the trace in Mbps."""
        if len(self) == 0:
            return 0.0
        return self.total_bits / self.duration_s / 1e6

    def throughput_mbps(self, bin_ms: float) -> np.ndarray:
        """Throughput series at time-bin granularity ``bin_ms``.

        Bins delivered bits into windows of ``bin_ms``; the trailing
        partial bin is dropped so every point covers a full window.
        """
        if bin_ms <= 0:
            raise ValueError("bin_ms must be positive")
        per_bin = max(1, int(round(bin_ms / self.slot_duration_ms)))
        n_bins = len(self) // per_bin
        if n_bins == 0:
            return np.array([])
        bits = self.delivered_bits[: n_bins * per_bin].reshape(n_bins, per_bin).sum(axis=1)
        return bits / (per_bin * self.slot_duration_ms * 1e-3) / 1e6

    @property
    def bler(self) -> float:
        """Initial-transmission block error rate."""
        initial = self.scheduled & ~self.is_retx
        n_initial = int(initial.sum())
        if n_initial == 0:
            return 0.0
        return float((initial & self.error).sum() / n_initial)

    def scheduled_view(self) -> "SlotTrace":
        """Sub-trace restricted to scheduled slots (grant dissection)."""
        return self.mask(self.scheduled.astype(bool))

    def mask(self, keep: np.ndarray) -> "SlotTrace":
        """Sub-trace of slots where ``keep`` is True (lengths preserved
        per column; metadata and numerology carried over)."""
        keep = np.asarray(keep, dtype=bool)
        if keep.size != len(self):
            raise ValueError("mask length mismatch")
        columns = {name: self.column(name)[keep] for name in TRACE_COLUMNS}
        return SlotTrace(mu=self.mu, metadata=self.metadata, **columns)

    def filter_cqi(self, minimum: int | None = None, maximum: int | None = None) -> "SlotTrace":
        """Sub-trace conditioned on CQI (e.g. the paper's CQI >= 12 cut)."""
        keep = np.ones(len(self), dtype=bool)
        if minimum is not None:
            keep &= self.cqi >= minimum
        if maximum is not None:
            keep &= self.cqi <= maximum
        return self.mask(keep)

    def modulation_shares(self) -> dict[int, float]:
        """Fraction of scheduled slots per modulation order (Fig. 5)."""
        sched = self.scheduled.astype(bool)
        total = int(sched.sum())
        if total == 0:
            return {}
        orders = self.modulation_order[sched]
        values, counts = np.unique(orders, return_counts=True)
        return {int(v): float(c) / total for v, c in zip(values, counts)}

    def layer_shares(self) -> dict[int, float]:
        """Fraction of scheduled slots per MIMO layer count (Fig. 6)."""
        sched = self.scheduled.astype(bool)
        total = int(sched.sum())
        if total == 0:
            return {}
        values, counts = np.unique(self.layers[sched], return_counts=True)
        return {int(v): float(c) / total for v, c in zip(values, counts)}

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, n_slots: int, mu: Numerology = Numerology.MU_1,
              metadata: TraceMetadata | None = None) -> "SlotTrace":
        """An all-zero trace of ``n_slots`` slots (simulator scratchpad)."""
        if n_slots < 0:
            raise ValueError("n_slots must be non-negative")
        columns: dict[str, np.ndarray] = {}
        for name in TRACE_COLUMNS:
            if name in _BOOL_COLUMNS:
                columns[name] = np.zeros(n_slots, dtype=bool)
            elif name in _INT_COLUMNS:
                columns[name] = np.zeros(n_slots, dtype=np.int64)
            else:
                columns[name] = np.zeros(n_slots, dtype=float)
        columns["slot"] = np.arange(n_slots, dtype=np.int64)
        columns["time_ms"] = columns["slot"] * slot_duration_ms(mu)
        return cls(mu=mu, metadata=metadata or TraceMetadata(), **columns)

    def concat(self, other: "SlotTrace") -> "SlotTrace":
        """Concatenate two traces (slot indices are re-based)."""
        if other.mu != self.mu:
            raise ValueError("cannot concatenate traces with different numerologies")
        columns = {
            name: np.concatenate([self.column(name), other.column(name)])
            for name in TRACE_COLUMNS
        }
        columns["slot"] = np.arange(len(self) + len(other), dtype=np.int64)
        columns["time_ms"] = columns["slot"] * self.slot_duration_ms
        return SlotTrace(mu=self.mu, metadata=self.metadata, **columns)
