"""Measurement-campaign dataset generation (mirrors §2 / Table 1).

The paper's campaign covers seven operators in five cities over ~17
weeks: per-operator sessions with DL/UL iPerf runs at several times of
day.  :func:`generate_campaign` re-creates that structure synthetically:
for each operator profile it produces a set of DL and UL traces with
session-to-session environment jitter, and reports Table 1-style
statistics.

The output volume is scaled down (full-fidelity 5 TB regeneration is
pointless); the ``minutes_per_operator`` knob controls size.

Sessions are independent by construction: the campaign is expanded into
a flat manifest of :class:`~repro.core.runner.SessionTask` descriptors,
each carrying a child seed derived from the campaign seed via
``SeedSequence(spec.seed, spawn_key=(crc32(operator_key), session))``.
The derived seed is recorded in each trace's metadata, so any exported
trace can be regenerated in isolation with :func:`run_session`, and
results are bit-identical for any ``jobs`` worker count.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.runner import (SessionTask, derive_seed,
                               register_cohort_runner, run_tasks)
from repro.ran.config import resolve_engine
from repro.ran.simulator import simulate_downlink, simulate_uplink
from repro.ran.tensor import simulate_downlink_cohort, simulate_uplink_cohort
from repro.xcal.io import write_csv, write_jsonl, write_npz, write_parquet
from repro.xcal.records import SlotTrace, TraceMetadata

#: Trace writer and file suffix per export format.  Parquet needs the
#: optional pyarrow package — listing it here keeps format discovery
#: uniform; the writer raises an actionable RuntimeError if pyarrow is
#: missing.
EXPORT_FORMATS = {
    "csv": (write_csv, ".csv"),
    "jsonl": (write_jsonl, ".jsonl"),
    "npz": (write_npz, ".npz"),
    "parquet": (write_parquet, ".parquet"),
}

#: Formats whose exports are laid out as hive-style partitions
#: (``operator=<key>/...``) instead of flat files — the layout query
#: engines (DuckDB, Spark, pandas) prune on.
_PARTITIONED_FORMATS = frozenset({"parquet"})

_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9._-]+")


def _filename_key(key: str) -> str:
    """Operator key sanitized for filenames.

    Path separators, whitespace and other non-portable characters
    collapse to ``_`` so a key like ``"O_Sp 100/shared"`` cannot escape
    the export directory or produce unportable names.
    """
    cleaned = _UNSAFE_FILENAME.sub("_", key).strip("._") or "operator"
    return cleaned


@dataclass(frozen=True)
class CampaignSpec:
    """Shape of a synthetic measurement campaign.

    Parameters
    ----------
    minutes_per_operator:
        Total simulated minutes per operator (DL + UL combined).
    session_s:
        Length of one measurement session in seconds.
    session_sinr_jitter_db:
        Std-dev of the per-session mean-SINR jitter (different days,
        times and exact spots).
    ul_fraction:
        Fraction of sessions that measure the uplink.
    seed:
        Campaign-level RNG seed.
    """

    minutes_per_operator: float = 2.0
    session_s: float = 20.0
    session_sinr_jitter_db: float = 1.0
    ul_fraction: float = 0.3
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.minutes_per_operator <= 0 or self.session_s <= 0:
            raise ValueError("durations must be positive")
        if not 0.0 <= self.ul_fraction <= 1.0:
            raise ValueError("ul_fraction must lie in [0, 1]")


@dataclass
class MeasurementCampaign:
    """Generated campaign: traces per operator plus summary statistics."""

    spec: CampaignSpec
    dl_traces: dict[str, list[SlotTrace]] = field(default_factory=dict)
    ul_traces: dict[str, list[SlotTrace]] = field(default_factory=dict)

    @property
    def operators(self) -> list[str]:
        return sorted(set(self.dl_traces) | set(self.ul_traces))

    @property
    def total_minutes(self) -> float:
        """Total simulated measurement minutes (Table 1's '5G Network Tests')."""
        seconds = 0.0
        for traces in list(self.dl_traces.values()) + list(self.ul_traces.values()):
            seconds += sum(t.duration_s for t in traces)
        return seconds / 60.0

    @property
    def total_data_gb(self) -> float:
        """Data volume delivered across all traces (Table 1's 'Data consumed')."""
        bits = 0
        for traces in list(self.dl_traces.values()) + list(self.ul_traces.values()):
            bits += sum(t.total_bits for t in traces)
        return bits / 8e9

    def summary_rows(self) -> list[str]:
        """Printable Table 1-style summary."""
        rows = [
            f"operators: {len(self.operators)}",
            f"5G network tests: {self.total_minutes:.1f} minutes",
            f"data consumed on 5G: {self.total_data_gb:.2f} GB",
        ]
        for key in self.operators:
            n_dl = len(self.dl_traces.get(key, []))
            n_ul = len(self.ul_traces.get(key, []))
            rows.append(f"  {key:10s} sessions: {n_dl} DL / {n_ul} UL")
        return rows

    def export(self, directory: str | Path, format: str = "csv") -> list[Path]:
        """Write every trace under ``directory``; returns paths.

        ``format`` is one of :data:`EXPORT_FORMATS` (``csv``, ``jsonl``,
        ``npz``, ``parquet``).  Operator keys are sanitized for
        filenames.  Flat formats write ``<operator>_<kind>_<i>`` files
        directly under ``directory``; parquet exports are partitioned
        hive-style (``operator=<key>/<kind>_<i>.parquet``) so dataset
        readers can prune whole operators without opening a file.
        """
        try:
            writer, suffix = EXPORT_FORMATS[format]
        except KeyError:
            raise ValueError(
                f"unknown export format {format!r}; known: {sorted(EXPORT_FORMATS)}"
            ) from None
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        partitioned = format in _PARTITIONED_FORMATS
        paths: list[Path] = []
        for kind, collection in (("dl", self.dl_traces), ("ul", self.ul_traces)):
            for key, traces in collection.items():
                safe = _filename_key(key)
                for i, trace in enumerate(traces):
                    if partitioned:
                        part = directory / f"operator={safe}"
                        part.mkdir(exist_ok=True)
                        target = part / f"{kind}_{i:03d}{suffix}"
                    else:
                        target = directory / f"{safe}_{kind}_{i:03d}{suffix}"
                    paths.append(writer(trace, target))
        return paths

    def export_csv(self, directory: str | Path) -> list[Path]:
        """Write every trace as CSV under ``directory``; returns paths."""
        return self.export(directory, format="csv")


@dataclass
class CampaignSummary:
    """Reduced campaign: per-group KPI sketches, no materialized traces.

    The streaming-reduction counterpart of :class:`MeasurementCampaign`,
    mirroring its reporting surface (``operators``, ``total_minutes``,
    ``total_data_gb``, ``summary_rows``) so Table 1 renders identically
    from either.  Session counts and delivered bits are exact; minutes
    come from a compensated sum (see :mod:`repro.core.reduce` for the
    full exact-vs-approximate contract).
    """

    spec: CampaignSpec
    sketch: object  # repro.core.reduce.CampaignSketch
    profile_keys: tuple[str, ...] = ()
    #: The reduction that produced the sketch (carries runner-side
    #: ``stats`` for the CLI's ``[reduce]`` accounting line).
    reduction: object | None = None

    def _counts(self) -> dict[str, dict[str, int]]:
        counts: dict[str, dict[str, int]] = {
            key: {"DL": 0, "UL": 0} for key in self.profile_keys}
        for group_key, group in self.sketch.groups.items():
            operator, _, direction = group_key.rpartition("/")
            counts.setdefault(operator, {"DL": 0, "UL": 0})
            counts[operator][direction] += group.n_sessions
        return counts

    @property
    def operators(self) -> list[str]:
        return sorted(self._counts())

    @property
    def n_sessions(self) -> int:
        return self.sketch.n_sessions

    @property
    def total_minutes(self) -> float:
        return sum(g.duration_s for g in self.sketch.groups.values()) / 60.0

    @property
    def total_data_gb(self) -> float:
        return sum(g.total_bits for g in self.sketch.groups.values()) / 8e9

    def group(self, operator_key: str, direction: str):
        """The :class:`~repro.core.reduce.GroupSketch` of one
        operator/direction, or ``None`` when no session fell in it."""
        return self.sketch.groups.get(f"{operator_key}/{direction}")

    def summary_rows(self) -> list[str]:
        """Printable Table 1-style summary (same shape as
        :meth:`MeasurementCampaign.summary_rows`)."""
        counts = self._counts()
        rows = [
            f"operators: {len(counts)}",
            f"5G network tests: {self.total_minutes:.1f} minutes",
            f"data consumed on 5G: {self.total_data_gb:.2f} GB",
        ]
        for key in sorted(counts):
            rows.append(f"  {key:10s} sessions: "
                        f"{counts[key]['DL']} DL / {counts[key]['UL']} UL")
        return rows


def campaign_reduction():
    """The standard campaign reduction: group by operator/direction,
    summaries only (variability sketches are opt-in per experiment)."""
    from repro.core.reduce import CampaignReduction

    return CampaignReduction(group_mode="campaign")


def session_seed(campaign_seed: int, operator_key: str, session: int) -> int:
    """Derived seed of one session of a campaign.

    The seed depends only on ``(campaign_seed, operator_key, session)``
    — not on the session count, the UL fraction, or which other
    operators are in the campaign — so shrinking or reshaping a
    campaign never perturbs the sessions it shares with a larger one.
    """
    return derive_seed(campaign_seed, operator_key, session)


def run_session(profile, spec: CampaignSpec, direction: str, seed: int) -> SlotTrace:
    """Simulate one self-contained campaign session.

    All randomness (environment jitter, channel realization, link
    simulation) flows from ``seed`` alone, which is also recorded in the
    trace metadata: feeding a trace's ``metadata.seed`` back into this
    function regenerates the trace bit-for-bit.
    """
    if direction not in ("DL", "UL"):
        raise ValueError(f"direction must be 'DL' or 'UL', got {direction!r}")
    rng = np.random.default_rng(seed)
    cell = profile.primary_cell
    jitter = spec.session_sinr_jitter_db * float(rng.standard_normal())
    metadata = TraceMetadata(
        operator=profile.operator, country=profile.country,
        carrier_name=cell.name, direction=direction,
        bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
        seed=seed,
    )
    if direction == "UL":
        channel = profile.ul_channel(jitter).realize(spec.session_s, mu=cell.mu, rng=rng)
        return simulate_uplink(cell, channel, rng=rng, params=profile.sim_params(),
                               max_layers=profile.ul_max_layers, metadata=metadata)
    channel = profile.dl_channel(jitter).realize(spec.session_s, mu=cell.mu, rng=rng)
    return simulate_downlink(cell, channel, rng=rng, params=profile.sim_params(),
                             metadata=metadata)


def run_session_cohort(profile, spec: CampaignSpec, direction: str,
                       seeds: list[int], arena_factory=None):
    """Batched counterpart of :func:`run_session` for same-shape cohorts.

    Yields one trace per seed, in order, each byte-identical to
    ``run_session(profile, spec, direction, seed)``.  When the
    profile's engine policy selects the cross-session tensor pass
    (``resolve_engine(engine, len(seeds)) == "tensor"``) the whole
    cohort executes as one ``(sessions x slots)`` pass in
    :mod:`repro.ran.tensor`; otherwise sessions run one at a time
    through the per-session path.  Either way the result is a lazy
    generator — a consumer that folds or stores each trace before
    advancing holds at most one trace.

    Registered as the cohort runner for :func:`run_session`, so
    :func:`repro.core.runner.run_tasks` routes maximal same-shape
    manifest runs through here automatically.

    ``arena_factory`` (``(n_cols, n_slots, mu) -> CohortArena | None``)
    is forwarded to the tensor engine so materializing consumers — the
    runner's plain, routed and shared-memory transports — get the
    cohort-wide arena flush; the per-session fallback path ignores it.
    """
    if direction not in ("DL", "UL"):
        raise ValueError(f"direction must be 'DL' or 'UL', got {direction!r}")
    params = profile.sim_params()
    if resolve_engine(params.engine, len(seeds)) != "tensor":
        return (run_session(profile, spec, direction, seed) for seed in seeds)
    cell = profile.primary_cell
    rngs, channels, metadatas = [], [], []
    for seed in seeds:
        # Exactly run_session's draw order per seed: jitter, then the
        # channel realization; the simulator consumes the rest.
        rng = np.random.default_rng(seed)
        jitter = spec.session_sinr_jitter_db * float(rng.standard_normal())
        metadatas.append(TraceMetadata(
            operator=profile.operator, country=profile.country,
            carrier_name=cell.name, direction=direction,
            bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
            seed=seed,
        ))
        prior = profile.ul_channel(jitter) if direction == "UL" \
            else profile.dl_channel(jitter)
        channels.append(prior.realize(spec.session_s, mu=cell.mu, rng=rng))
        rngs.append(rng)
    if direction == "UL":
        return simulate_uplink_cohort(cell, channels, rngs, params=params,
                                      max_layers=profile.ul_max_layers,
                                      metadatas=metadatas,
                                      arena_factory=arena_factory)
    return simulate_downlink_cohort(cell, channels, rngs, params=params,
                                    metadatas=metadatas,
                                    arena_factory=arena_factory)


register_cohort_runner(run_session, run_session_cohort, accepts_arena=True)


def campaign_manifest(profiles: dict, spec: CampaignSpec) -> list[SessionTask]:
    """Expand a campaign into its flat session manifest."""
    n_sessions = max(1, int(round(spec.minutes_per_operator * 60.0 / spec.session_s)))
    n_ul = int(round(n_sessions * spec.ul_fraction))
    tasks: list[SessionTask] = []
    for key, profile in profiles.items():
        for session in range(n_sessions):
            direction = "UL" if session < n_ul else "DL"
            tasks.append(SessionTask(
                fn=run_session,
                kwargs={"profile": profile, "spec": spec, "direction": direction},
                seed=session_seed(spec.seed, key, session),
                label=f"{key}/{direction}/{session:03d}",
            ))
    return tasks


def generate_campaign(
    profiles: dict | None = None,
    spec: CampaignSpec | None = None,
    jobs: int | str | None = 1,
    store=None,
    executor=None,
    transport: str = "auto",
    reduce: bool | object = False,
) -> MeasurementCampaign | CampaignSummary:
    """Generate a synthetic campaign over the given operator profiles.

    ``profiles`` defaults to all operators of the study.  Per session
    the operator's environment prior is jittered, a channel realization
    drawn, and a full-buffer DL or UL run simulated.  Sessions execute
    through :func:`repro.core.runner.run_tasks`: ``jobs=1`` (default)
    runs serially, ``jobs=N`` or ``jobs="auto"`` fans out to a process
    pool with bit-identical results.  ``store`` (a
    :class:`repro.store.TraceStore`) memoizes sessions: previously
    simulated ones load from disk, new ones are simulated and
    backfilled, and the campaign is identical either way.  ``executor``
    (a :class:`repro.core.runner.CampaignExecutor`) reuses one warm
    worker pool across campaigns; ``transport`` selects how worker
    results travel back (see :func:`repro.core.runner.run_tasks`).

    ``reduce`` switches to streaming reduction: ``True`` uses the
    standard :func:`campaign_reduction` (or pass a configured
    :class:`~repro.core.reduce.CampaignReduction`), traces are folded
    into per-group sketches as they complete — never all held in memory
    — and the return value is a :class:`CampaignSummary` instead of a
    :class:`MeasurementCampaign`.
    """
    from repro.operators.profiles import ALL_PROFILES

    profiles = profiles if profiles is not None else ALL_PROFILES
    spec = spec or CampaignSpec()
    manifest = campaign_manifest(profiles, spec)
    if reduce:
        reduction = campaign_reduction() if reduce is True else reduce
        sketch = run_tasks(manifest, jobs=jobs, store=store, executor=executor,
                           transport=transport, reduce=reduction)
        return CampaignSummary(spec=spec, sketch=sketch,
                               profile_keys=tuple(profiles), reduction=reduction)
    campaign = MeasurementCampaign(spec=spec)
    for key in profiles:
        campaign.dl_traces[key] = []
        campaign.ul_traces[key] = []
    results = run_tasks(manifest, jobs=jobs, store=store,
                        executor=executor, transport=transport)
    for task, trace in zip(manifest, results):
        key, direction, _ = task.label.rsplit("/", 2)  # key itself may contain "/"
        collection = campaign.ul_traces if direction == "UL" else campaign.dl_traces
        collection[key].append(trace)
    return campaign
