"""Measurement-campaign dataset generation (mirrors §2 / Table 1).

The paper's campaign covers seven operators in five cities over ~17
weeks: per-operator sessions with DL/UL iPerf runs at several times of
day.  :func:`generate_campaign` re-creates that structure synthetically:
for each operator profile it produces a set of DL and UL traces with
session-to-session environment jitter, and reports Table 1-style
statistics.

The output volume is scaled down (full-fidelity 5 TB regeneration is
pointless); the ``minutes_per_operator`` knob controls size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ran.simulator import simulate_downlink, simulate_uplink
from repro.xcal.io import write_csv
from repro.xcal.records import SlotTrace, TraceMetadata


@dataclass(frozen=True)
class CampaignSpec:
    """Shape of a synthetic measurement campaign.

    Parameters
    ----------
    minutes_per_operator:
        Total simulated minutes per operator (DL + UL combined).
    session_s:
        Length of one measurement session in seconds.
    session_sinr_jitter_db:
        Std-dev of the per-session mean-SINR jitter (different days,
        times and exact spots).
    ul_fraction:
        Fraction of sessions that measure the uplink.
    seed:
        Campaign-level RNG seed.
    """

    minutes_per_operator: float = 2.0
    session_s: float = 20.0
    session_sinr_jitter_db: float = 1.0
    ul_fraction: float = 0.3
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.minutes_per_operator <= 0 or self.session_s <= 0:
            raise ValueError("durations must be positive")
        if not 0.0 <= self.ul_fraction < 1.0:
            raise ValueError("ul_fraction must lie in [0, 1)")


@dataclass
class MeasurementCampaign:
    """Generated campaign: traces per operator plus summary statistics."""

    spec: CampaignSpec
    dl_traces: dict[str, list[SlotTrace]] = field(default_factory=dict)
    ul_traces: dict[str, list[SlotTrace]] = field(default_factory=dict)

    @property
    def operators(self) -> list[str]:
        return sorted(set(self.dl_traces) | set(self.ul_traces))

    @property
    def total_minutes(self) -> float:
        """Total simulated measurement minutes (Table 1's '5G Network Tests')."""
        seconds = 0.0
        for traces in list(self.dl_traces.values()) + list(self.ul_traces.values()):
            seconds += sum(t.duration_s for t in traces)
        return seconds / 60.0

    @property
    def total_data_gb(self) -> float:
        """Data volume delivered across all traces (Table 1's 'Data consumed')."""
        bits = 0
        for traces in list(self.dl_traces.values()) + list(self.ul_traces.values()):
            bits += sum(t.total_bits for t in traces)
        return bits / 8e9

    def summary_rows(self) -> list[str]:
        """Printable Table 1-style summary."""
        rows = [
            f"operators: {len(self.operators)}",
            f"5G network tests: {self.total_minutes:.1f} minutes",
            f"data consumed on 5G: {self.total_data_gb:.2f} GB",
        ]
        for key in self.operators:
            n_dl = len(self.dl_traces.get(key, []))
            n_ul = len(self.ul_traces.get(key, []))
            rows.append(f"  {key:10s} sessions: {n_dl} DL / {n_ul} UL")
        return rows

    def export_csv(self, directory: str | Path) -> list[Path]:
        """Write every trace as CSV under ``directory``; returns paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        for kind, collection in (("dl", self.dl_traces), ("ul", self.ul_traces)):
            for key, traces in collection.items():
                for i, trace in enumerate(traces):
                    paths.append(write_csv(trace, directory / f"{key}_{kind}_{i:03d}.csv"))
        return paths


def generate_campaign(
    profiles: dict | None = None,
    spec: CampaignSpec | None = None,
) -> MeasurementCampaign:
    """Generate a synthetic campaign over the given operator profiles.

    ``profiles`` defaults to all operators of the study.  Per session
    the operator's environment prior is jittered, a channel realization
    drawn, and a full-buffer DL or UL run simulated.
    """
    from repro.operators.profiles import ALL_PROFILES

    profiles = profiles if profiles is not None else ALL_PROFILES
    spec = spec or CampaignSpec()
    rng = np.random.default_rng(spec.seed)
    campaign = MeasurementCampaign(spec=spec)
    n_sessions = max(1, int(round(spec.minutes_per_operator * 60.0 / spec.session_s)))
    n_ul = int(round(n_sessions * spec.ul_fraction))

    for key, profile in profiles.items():
        cell = profile.primary_cell
        campaign.dl_traces[key] = []
        campaign.ul_traces[key] = []
        for session in range(n_sessions):
            jitter = spec.session_sinr_jitter_db * float(rng.standard_normal())
            is_ul = session < n_ul
            metadata = TraceMetadata(
                operator=profile.operator, country=profile.country,
                carrier_name=cell.name, direction="UL" if is_ul else "DL",
                bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
                seed=spec.seed,
            )
            if is_ul:
                channel = profile.ul_channel(jitter).realize(spec.session_s, mu=cell.mu, rng=rng)
                trace = simulate_uplink(cell, channel, rng=rng, params=profile.sim_params(),
                                        max_layers=profile.ul_max_layers, metadata=metadata)
                campaign.ul_traces[key].append(trace)
            else:
                channel = profile.dl_channel(jitter).realize(spec.session_s, mu=cell.mu, rng=rng)
                trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params(),
                                          metadata=metadata)
                campaign.dl_traces[key].append(trace)
    return campaign
