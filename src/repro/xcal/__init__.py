"""XCAL-equivalent trace layer.

The paper collected slot-level KPIs with the Accuver XCAL professional
tool.  This package defines the equivalent artifact for our simulator —
a struct-of-arrays :class:`~repro.xcal.records.SlotTrace` with one entry
per slot — plus CSV/JSONL import/export and a measurement-campaign
dataset generator mirroring §2.
"""

from repro.xcal.records import SlotTrace, TraceMetadata
from repro.xcal.io import write_csv, read_csv, write_jsonl, read_jsonl
from repro.xcal.kpis import TraceSummary, summarize_trace, compare_traces


def __getattr__(name: str):
    # Lazy: repro.xcal.dataset drives the RAN simulator, which itself
    # depends on repro.xcal.records — a direct import here would cycle.
    if name in ("CampaignSpec", "MeasurementCampaign", "generate_campaign"):
        from repro.xcal import dataset

        return getattr(dataset, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "SlotTrace",
    "TraceMetadata",
    "write_csv",
    "read_csv",
    "write_jsonl",
    "read_jsonl",
    "TraceSummary",
    "summarize_trace",
    "compare_traces",
    "CampaignSpec",
    "MeasurementCampaign",
    "generate_campaign",
]
