"""Trace serialization: CSV, JSONL, columnar npz and optional Parquet.

The released artifact repository ships per-section CSV extracts; these
readers/writers round-trip our :class:`~repro.xcal.records.SlotTrace`
through the same flat format so externally produced KPI extracts with
matching columns load through the identical code path.

CSV layout: a ``#`` metadata header (key=value lines), then a column
header row, then one row per slot.  JSONL layout: first line is a
metadata object, each following line one slot record.  npz layout: one
``.npy`` zip member per trace column plus a ``_meta`` member holding
the metadata object as JSON — columnar, binary-exact, and written
deterministically (fixed zip timestamps, sorted members) so identical
traces always serialize to identical bytes.
"""

from __future__ import annotations

import csv
import io as _io
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.nr.numerology import Numerology
from repro.xcal.records import (
    TRACE_COLUMNS,
    SlotTrace,
    TraceMetadata,
    _BOOL_COLUMNS,
    _INT_COLUMNS,
    metadata_field_types,
)


def _metadata_pairs(trace: SlotTrace) -> dict:
    pairs = {"mu": int(trace.mu)}
    pairs.update(trace.metadata.as_dict())
    return pairs


def _parse_metadata(pairs: dict) -> tuple[Numerology, TraceMetadata]:
    """Metadata pairs (string-valued or JSON-typed) back to objects.

    Casts come from the :class:`TraceMetadata` field annotations (via
    :func:`repro.xcal.records.metadata_field_types` and the coercing
    constructor), never from a hardcoded per-field list; unknown keys
    are ignored so extended extracts still load.
    """
    mu = Numerology(int(pairs.pop("mu", 1)))
    known = metadata_field_types()
    kwargs = {key: value for key, value in pairs.items() if key in known}
    return mu, TraceMetadata(**kwargs)


def _columns_to_trace(columns: dict[str, list], mu: Numerology, metadata: TraceMetadata) -> SlotTrace:
    arrays = {}
    for name in TRACE_COLUMNS:
        raw = columns.get(name, [])
        if name in _BOOL_COLUMNS:
            arrays[name] = np.array([str(v) in ("1", "True", "true") for v in raw], dtype=bool)
        elif name in _INT_COLUMNS:
            arrays[name] = np.array([int(float(v)) for v in raw], dtype=np.int64)
        else:
            arrays[name] = np.array([float(v) for v in raw], dtype=float)
    return SlotTrace(mu=mu, metadata=metadata, **arrays)


# ---------------------------------------------------------------------- #
# CSV
# ---------------------------------------------------------------------- #
def write_csv(trace: SlotTrace, path: str | Path) -> Path:
    """Write a trace to CSV; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        for key, value in _metadata_pairs(trace).items():
            handle.write(f"# {key}={value}\n")
        writer = csv.writer(handle)
        writer.writerow(TRACE_COLUMNS)
        matrix = [trace.column(name) for name in TRACE_COLUMNS]
        for row in zip(*matrix):
            writer.writerow([int(v) if isinstance(v, (bool, np.bool_)) else v for v in row])
    return path


def read_csv(path: str | Path) -> SlotTrace:
    """Read a trace written by :func:`write_csv` (or a compatible extract)."""
    path = Path(path)
    pairs: dict = {}
    with path.open() as handle:
        position = handle.tell()
        line = handle.readline()
        while line.startswith("#"):
            body = line[1:].strip()
            if "=" in body:
                key, _, value = body.partition("=")
                pairs[key.strip()] = value.strip()
            position = handle.tell()
            line = handle.readline()
        handle.seek(position)
        reader = csv.DictReader(handle)
        columns: dict[str, list] = {name: [] for name in TRACE_COLUMNS}
        for row in reader:
            for name in TRACE_COLUMNS:
                if name not in row or row[name] is None:
                    raise ValueError(f"CSV {path} is missing trace column {name!r}")
                columns[name].append(row[name])
    mu, metadata = _parse_metadata(pairs)
    return _columns_to_trace(columns, mu, metadata)


# ---------------------------------------------------------------------- #
# JSONL
# ---------------------------------------------------------------------- #
def write_jsonl(trace: SlotTrace, path: str | Path) -> Path:
    """Write a trace to JSONL; first line holds the metadata object."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(json.dumps({"_meta": _metadata_pairs(trace)}) + "\n")
        matrix = {name: trace.column(name) for name in TRACE_COLUMNS}
        for i in range(len(trace)):
            record = {}
            for name in TRACE_COLUMNS:
                value = matrix[name][i]
                if isinstance(value, (np.bool_,)):
                    record[name] = bool(value)
                elif isinstance(value, (np.integer,)):
                    record[name] = int(value)
                elif isinstance(value, (np.floating,)):
                    record[name] = float(value)
                else:
                    record[name] = value
            handle.write(json.dumps(record) + "\n")
    return path


def read_jsonl(path: str | Path) -> SlotTrace:
    """Read a trace written by :func:`write_jsonl`."""
    path = Path(path)
    columns: dict[str, list] = {name: [] for name in TRACE_COLUMNS}
    pairs: dict = {}
    with path.open() as handle:
        first = handle.readline()
        if not first:
            raise ValueError(f"{path} is empty")
        head = json.loads(first)
        if "_meta" in head:
            pairs = head["_meta"]
        else:  # headerless file: first line is a record
            for name in TRACE_COLUMNS:
                columns[name].append(head[name])
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            for name in TRACE_COLUMNS:
                columns[name].append(record[name])
    mu, metadata = _parse_metadata(dict(pairs))
    return _columns_to_trace(columns, mu, metadata)


# ---------------------------------------------------------------------- #
# npz (columnar)
# ---------------------------------------------------------------------- #
#: Fixed zip member timestamp so npz bytes depend only on trace content.
_NPZ_EPOCH = (1980, 1, 1, 0, 0, 0)


def npz_bytes(arrays: dict[str, np.ndarray], meta: dict) -> bytes:
    """Serialize named arrays plus a JSON metadata object to npz bytes.

    Unlike ``numpy.savez`` the result is deterministic: members are
    written in sorted order with a fixed timestamp and no compression,
    so identical inputs always produce identical bytes (the store hashes
    and byte-compares these blobs).  The output loads with ``np.load``.
    """
    payload = dict(arrays)
    payload["_meta"] = np.array(json.dumps(meta, sort_keys=True))
    buffer = _io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_STORED) as archive:
        for name in sorted(payload):
            member = _io.BytesIO()
            np.lib.format.write_array(member, np.ascontiguousarray(payload[name]),
                                      allow_pickle=False)
            archive.writestr(zipfile.ZipInfo(name + ".npy", date_time=_NPZ_EPOCH),
                             member.getvalue())
    return buffer.getvalue()


def npz_arrays(data: bytes) -> tuple[dict[str, np.ndarray], dict]:
    """Inverse of :func:`npz_bytes`: ``(arrays, meta)`` from npz bytes."""
    with np.load(_io.BytesIO(data), allow_pickle=False) as archive:
        names = [name for name in archive.files if name != "_meta"]
        arrays = {name: archive[name] for name in names}
        if "_meta" in archive.files:
            meta = json.loads(str(np.asarray(archive["_meta"]).reshape(-1)[0]))
        else:
            meta = {}
    return arrays, meta


def trace_to_arrays(trace: SlotTrace, prefix: str = "") -> dict[str, np.ndarray]:
    """Columnar arrays of a trace, optionally under a ``prefix``."""
    return {prefix + name: trace.column(name) for name in TRACE_COLUMNS}


def arrays_to_trace(arrays: dict[str, np.ndarray], pairs: dict,
                    prefix: str = "") -> SlotTrace:
    """Rebuild a trace from columnar arrays plus a metadata-pairs dict."""
    mu, metadata = _parse_metadata(dict(pairs))
    columns = {}
    for name in TRACE_COLUMNS:
        raw = arrays.get(prefix + name)
        if raw is None:
            raise ValueError(f"npz payload is missing trace column {prefix + name!r}")
        if name in _BOOL_COLUMNS:
            columns[name] = np.asarray(raw, dtype=bool)
        elif name in _INT_COLUMNS:
            columns[name] = np.asarray(raw, dtype=np.int64)
        else:
            columns[name] = np.asarray(raw, dtype=float)
    return SlotTrace(mu=mu, metadata=metadata, **columns)


def trace_npz_bytes(trace: SlotTrace) -> bytes:
    """A single trace as deterministic npz bytes."""
    return npz_bytes(trace_to_arrays(trace), _metadata_pairs(trace))


def write_npz(trace: SlotTrace, path: str | Path) -> Path:
    """Write a trace as a columnar npz blob; returns the path."""
    path = Path(path)
    path.write_bytes(trace_npz_bytes(trace))
    return path


def read_npz(path: str | Path) -> SlotTrace:
    """Read a trace written by :func:`write_npz`."""
    arrays, meta = npz_arrays(Path(path).read_bytes())
    return arrays_to_trace(arrays, meta)


# ---------------------------------------------------------------------- #
# Parquet (optional, via pyarrow)
# ---------------------------------------------------------------------- #
#: Schema-metadata key holding the trace's metadata pairs as JSON.
_PARQUET_META_KEY = b"repro.trace_meta"


def _require_pyarrow():
    """The ``pyarrow.parquet`` module, or a clean error.

    Parquet export is an optional integration: the simulator never
    needs it, so pyarrow is not a dependency.  Importing lazily here
    keeps ``import repro`` arrow-free and turns a missing wheel into an
    actionable message at the one call site that wanted it.
    """
    try:
        import pyarrow  # noqa: F401  (parquet needs the parent package)
        import pyarrow.parquet as pq
    except ImportError as exc:
        raise RuntimeError(
            "parquet export requires the optional 'pyarrow' package "
            "(pip install pyarrow); csv, jsonl and npz formats work "
            "without it") from exc
    return pq


def write_parquet(trace: SlotTrace, path: str | Path) -> Path:
    """Write a trace as a Parquet file; returns the path.

    One row per slot, one Arrow column per trace column (bool columns
    stay bool, counters int64, the rest float64).  The trace metadata
    travels as file-level schema metadata under ``repro.trace_meta`` —
    the Parquet analogue of the CSV ``#`` header — so the file is both
    self-describing for external tools (DuckDB, pandas, Spark) and
    round-trippable through :func:`read_parquet`.  Requires the
    optional ``pyarrow`` package; raises :class:`RuntimeError` with an
    install hint when it is missing.
    """
    pq = _require_pyarrow()
    import pyarrow as pa

    path = Path(path)
    table = pa.table({name: trace.column(name) for name in TRACE_COLUMNS})
    meta_json = json.dumps(_metadata_pairs(trace), sort_keys=True)
    table = table.replace_schema_metadata(
        {_PARQUET_META_KEY: meta_json.encode()})
    pq.write_table(table, path)
    return path


def read_parquet(path: str | Path) -> SlotTrace:
    """Read a trace written by :func:`write_parquet`."""
    pq = _require_pyarrow()

    table = pq.read_table(Path(path))
    schema_meta = table.schema.metadata or {}
    pairs = json.loads(schema_meta.get(_PARQUET_META_KEY, b"{}").decode())
    arrays = {name: np.asarray(table.column(name))
              for name in table.column_names}
    return arrays_to_trace(arrays, pairs)
