"""Trace serialization: CSV and JSONL.

The released artifact repository ships per-section CSV extracts; these
readers/writers round-trip our :class:`~repro.xcal.records.SlotTrace`
through the same flat format so externally produced KPI extracts with
matching columns load through the identical code path.

CSV layout: a ``#`` metadata header (key=value lines), then a column
header row, then one row per slot.  JSONL layout: first line is a
metadata object, each following line one slot record.
"""

from __future__ import annotations

import csv
import json
from dataclasses import fields as dataclass_fields
from pathlib import Path

import numpy as np

from repro.nr.numerology import Numerology
from repro.xcal.records import TRACE_COLUMNS, SlotTrace, TraceMetadata, _BOOL_COLUMNS, _INT_COLUMNS


def _metadata_pairs(trace: SlotTrace) -> dict:
    pairs = {"mu": int(trace.mu)}
    pairs.update(trace.metadata.as_dict())
    return pairs


def _parse_metadata(pairs: dict) -> tuple[Numerology, TraceMetadata]:
    mu = Numerology(int(pairs.pop("mu", 1)))
    known = {f.name for f in dataclass_fields(TraceMetadata)}
    kwargs = {}
    for key, value in pairs.items():
        if key not in known:
            continue
        if key == "bandwidth_mhz":
            kwargs[key] = float(value)
        elif key in ("scs_khz",):
            kwargs[key] = int(value)
        elif key == "seed":
            kwargs[key] = None if value in (None, "", "None") else int(value)
        else:
            kwargs[key] = value
    return mu, TraceMetadata(**kwargs)


def _columns_to_trace(columns: dict[str, list], mu: Numerology, metadata: TraceMetadata) -> SlotTrace:
    arrays = {}
    for name in TRACE_COLUMNS:
        raw = columns.get(name, [])
        if name in _BOOL_COLUMNS:
            arrays[name] = np.array([str(v) in ("1", "True", "true") for v in raw], dtype=bool)
        elif name in _INT_COLUMNS:
            arrays[name] = np.array([int(float(v)) for v in raw], dtype=np.int64)
        else:
            arrays[name] = np.array([float(v) for v in raw], dtype=float)
    return SlotTrace(mu=mu, metadata=metadata, **arrays)


# ---------------------------------------------------------------------- #
# CSV
# ---------------------------------------------------------------------- #
def write_csv(trace: SlotTrace, path: str | Path) -> Path:
    """Write a trace to CSV; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        for key, value in _metadata_pairs(trace).items():
            handle.write(f"# {key}={value}\n")
        writer = csv.writer(handle)
        writer.writerow(TRACE_COLUMNS)
        matrix = [trace.column(name) for name in TRACE_COLUMNS]
        for row in zip(*matrix):
            writer.writerow([int(v) if isinstance(v, (bool, np.bool_)) else v for v in row])
    return path


def read_csv(path: str | Path) -> SlotTrace:
    """Read a trace written by :func:`write_csv` (or a compatible extract)."""
    path = Path(path)
    pairs: dict = {}
    with path.open() as handle:
        position = handle.tell()
        line = handle.readline()
        while line.startswith("#"):
            body = line[1:].strip()
            if "=" in body:
                key, _, value = body.partition("=")
                pairs[key.strip()] = value.strip()
            position = handle.tell()
            line = handle.readline()
        handle.seek(position)
        reader = csv.DictReader(handle)
        columns: dict[str, list] = {name: [] for name in TRACE_COLUMNS}
        for row in reader:
            for name in TRACE_COLUMNS:
                if name not in row or row[name] is None:
                    raise ValueError(f"CSV {path} is missing trace column {name!r}")
                columns[name].append(row[name])
    mu, metadata = _parse_metadata(pairs)
    return _columns_to_trace(columns, mu, metadata)


# ---------------------------------------------------------------------- #
# JSONL
# ---------------------------------------------------------------------- #
def write_jsonl(trace: SlotTrace, path: str | Path) -> Path:
    """Write a trace to JSONL; first line holds the metadata object."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(json.dumps({"_meta": _metadata_pairs(trace)}) + "\n")
        matrix = {name: trace.column(name) for name in TRACE_COLUMNS}
        for i in range(len(trace)):
            record = {}
            for name in TRACE_COLUMNS:
                value = matrix[name][i]
                if isinstance(value, (np.bool_,)):
                    record[name] = bool(value)
                elif isinstance(value, (np.integer,)):
                    record[name] = int(value)
                elif isinstance(value, (np.floating,)):
                    record[name] = float(value)
                else:
                    record[name] = value
            handle.write(json.dumps(record) + "\n")
    return path


def read_jsonl(path: str | Path) -> SlotTrace:
    """Read a trace written by :func:`write_jsonl`."""
    path = Path(path)
    columns: dict[str, list] = {name: [] for name in TRACE_COLUMNS}
    pairs: dict = {}
    with path.open() as handle:
        first = handle.readline()
        if not first:
            raise ValueError(f"{path} is empty")
        head = json.loads(first)
        if "_meta" in head:
            pairs = head["_meta"]
        else:  # headerless file: first line is a record
            for name in TRACE_COLUMNS:
                columns[name].append(head[name])
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            for name in TRACE_COLUMNS:
                columns[name].append(record[name])
    mu, metadata = _parse_metadata(dict(pairs))
    return _columns_to_trace(columns, mu, metadata)
