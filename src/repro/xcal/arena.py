"""Cohort trace arena: one contiguous buffer backing a whole cohort.

The cohort tensor engine (:mod:`repro.ran.tensor`) produces one
:class:`~repro.xcal.records.SlotTrace` per session of a same-shape
cohort.  Building those traces column by column — 18 fresh arrays per
session plus a stack of per-column scatter writes — is the flush tax
that dominated cohort wall time.  A :class:`CohortArena` removes it:

- Every trace column of every session lives in **one contiguous
  buffer**, laid out as an ``(n_cols, n_slots)`` 2-D block per column
  in :data:`~repro.xcal.records.TRACE_COLUMNS` order, with the exact
  dtypes :meth:`SlotTrace.empty` allocates (int64 / bool / float64) so
  a row serializes byte-identically to a standalone trace.
- The engine writes its per-period constants with **cohort-wide 2-D
  masked writes** instead of per-column loops; per-session traces are
  then just row views (:meth:`trace`) — no copies, no re-expansion.
- The buffer can live in ``multiprocessing.shared_memory``: a worker
  fills the arena, ships only ``(segment name, layout)`` over the
  pipe, and the parent rebuilds zero-copy views with
  :meth:`from_layout` (see ``transport="shm"`` in
  :mod:`repro.core.runner`).

The layout is **schema-versioned** (:data:`ARENA_SCHEMA_VERSION`,
folded into every layout dict): a parent refuses to interpret a
segment written by a worker with a different column schema instead of
silently mis-slicing it.

All column views derive from one base ``uint8`` array over the
buffer, so any live row view keeps the base (and therefore a backing
shared-memory mapping) alive — the runner hangs the segment's
deferred close off the base array's lifetime.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.nr.numerology import Numerology, slot_duration_ms
from repro.xcal.records import (TRACE_COLUMNS, SlotTrace, TraceMetadata,
                                _BOOL_COLUMNS, _INT_COLUMNS)

__all__ = [
    "ARENA_SCHEMA_VERSION",
    "CohortArena",
    "arena_nbytes",
    "column_dtype",
]

#: Bump when the column set, order, dtypes or packing rule changes.
#: Folded into every layout dict; :meth:`CohortArena.from_layout`
#: rejects mismatches.
ARENA_SCHEMA_VERSION = 1

#: Per-column block alignment inside the buffer.  Blocks start on
#: 8-byte boundaries so int64/float64 views are always aligned (the
#: base mapping is page-aligned for both shm and heap buffers).
_ALIGN = 8


def column_dtype(name: str) -> np.dtype:
    """The dtype :meth:`SlotTrace.empty` allocates for ``name``."""
    if name in _BOOL_COLUMNS:
        return np.dtype(bool)
    if name in _INT_COLUMNS:
        return np.dtype(np.int64)
    return np.dtype(np.float64)


def _offsets(n_cols: int, n_slots: int) -> tuple[dict[str, int], int]:
    """``column name -> byte offset`` plus the total buffer size."""
    offsets: dict[str, int] = {}
    cursor = 0
    cells = n_cols * n_slots
    for name in TRACE_COLUMNS:
        offsets[name] = cursor
        nbytes = cells * column_dtype(name).itemsize
        cursor += -(-nbytes // _ALIGN) * _ALIGN
    return offsets, cursor


def arena_nbytes(n_cols: int, n_slots: int) -> int:
    """Buffer size in bytes for an ``(n_cols, n_slots)`` arena."""
    if n_cols < 1 or n_slots < 0:
        raise ValueError("arena needs n_cols >= 1 and n_slots >= 0")
    return _offsets(n_cols, n_slots)[1]


class CohortArena:
    """A cohort's trace columns as 2-D views over one buffer.

    Construct with :meth:`allocate` (private heap buffer, engine side),
    :meth:`over_buffer` (caller-supplied buffer, e.g. a fresh
    shared-memory segment) or :meth:`from_layout` (attach side of the
    shm transport).  ``columns[name]`` is the ``(n_cols, n_slots)``
    view of one trace column; :meth:`trace` materializes session ``c``
    as a :class:`SlotTrace` of zero-copy row views.
    """

    def __init__(self, base: np.ndarray, n_cols: int, n_slots: int,
                 mu: Numerology, fill_base: bool) -> None:
        if base.dtype != np.uint8 or base.ndim != 1:
            raise ValueError("arena base must be a 1-D uint8 array")
        offsets, total = _offsets(n_cols, n_slots)
        if base.size < total:
            raise ValueError(
                f"arena buffer holds {base.size} bytes, layout needs {total}")
        self.n_cols = n_cols
        self.n_slots = n_slots
        self.mu = Numerology(mu)
        self.base: np.ndarray | None = base
        self.columns: dict[str, np.ndarray] = {}
        cells = n_cols * n_slots
        for name in TRACE_COLUMNS:
            dtype = column_dtype(name)
            lo = offsets[name]
            block = base[lo:lo + cells * dtype.itemsize]
            self.columns[name] = block.view(dtype).reshape(n_cols, n_slots)
        if fill_base:
            slots = np.arange(n_slots, dtype=np.int64)
            self.columns["slot"][:] = slots
            self.columns["time_ms"][:] = slots * slot_duration_ms(self.mu)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def allocate(cls, n_cols: int, n_slots: int,
                 mu: Numerology = Numerology.MU_1) -> "CohortArena":
        """A zero-initialized arena over a private heap buffer."""
        base = np.zeros(arena_nbytes(n_cols, n_slots), dtype=np.uint8)
        return cls(base, n_cols, n_slots, mu, fill_base=True)

    @classmethod
    def over_buffer(cls, buffer, n_cols: int, n_slots: int,
                    mu: Numerology = Numerology.MU_1, *,
                    zeroed: bool = False, fill_base: bool = True) -> "CohortArena":
        """An arena over a caller-supplied writable buffer.

        ``zeroed=True`` skips the explicit zero fill (fresh POSIX shm
        segments are kernel-zeroed); ``fill_base=False`` skips the
        slot/time_ms invariants too (the attach side of the shm
        transport, where the writer already filled everything).
        """
        base = np.frombuffer(buffer, dtype=np.uint8)
        if not base.flags.writeable:
            raise ValueError("arena buffer must be writable")
        if fill_base and not zeroed:
            base[:arena_nbytes(n_cols, n_slots)] = 0
        return cls(base, n_cols, n_slots, mu, fill_base=fill_base)

    @classmethod
    def from_layout(cls, buffer, layout: Mapping) -> "CohortArena":
        """Attach to an already-written arena described by ``layout``.

        Validates the schema version and size before building any view,
        so a segment written under a different column schema fails
        loudly instead of mis-slicing.
        """
        schema = layout.get("schema")
        if schema != ARENA_SCHEMA_VERSION:
            raise ValueError(
                f"arena schema mismatch: segment has {schema!r}, "
                f"this process expects {ARENA_SCHEMA_VERSION}")
        n_cols = int(layout["n_cols"])
        n_slots = int(layout["n_slots"])
        mu = Numerology(int(layout["mu"]))
        expected = arena_nbytes(n_cols, n_slots)
        if int(layout["nbytes"]) != expected:
            raise ValueError(
                f"arena layout declares {layout['nbytes']} bytes, "
                f"schema computes {expected}")
        return cls.over_buffer(buffer, n_cols, n_slots, mu,
                               zeroed=True, fill_base=False)

    def layout(self) -> dict:
        """The picklable descriptor :meth:`from_layout` consumes."""
        return {
            "schema": ARENA_SCHEMA_VERSION,
            "n_cols": self.n_cols,
            "n_slots": self.n_slots,
            "mu": int(self.mu),
            "nbytes": arena_nbytes(self.n_cols, self.n_slots),
        }

    # ------------------------------------------------------------------ #
    # Traces
    # ------------------------------------------------------------------ #
    def trace(self, c: int, metadata: TraceMetadata | None = None) -> SlotTrace:
        """Session ``c`` as a :class:`SlotTrace` of zero-copy row views.

        Rows of a C-contiguous 2-D block are themselves contiguous, so
        the views serialize (npz/CSV/store codec) byte-identically to a
        standalone trace.
        """
        if not 0 <= c < self.n_cols:
            raise IndexError(f"arena row {c} out of range [0, {self.n_cols})")
        return SlotTrace(mu=self.mu, metadata=metadata or TraceMetadata(),
                         **{name: col[c] for name, col in self.columns.items()})

    def pack_row(self, c: int, trace: SlotTrace) -> None:
        """Copy an existing trace into row ``c`` (one strided copy per
        column) — the shm transport's path for traces produced outside
        a cohort pass."""
        if len(trace) != self.n_slots:
            raise ValueError(
                f"trace has {len(trace)} slots, arena rows hold {self.n_slots}")
        for name, col in self.columns.items():
            col[c] = trace.column(name)

    def row_index_of(self, trace: SlotTrace) -> int | None:
        """The arena row a trace views, or ``None`` if it is not a row
        view of this arena.

        Numpy collapses view chains — a row of a 2-D view of ``base``
        reports ``base`` itself as its ``.base`` — so the identity
        check is against the shared uint8 base array, and the row
        index falls out of the pointer offset from the ``slot``
        block's start.
        """
        if self.base is None or self.n_slots == 0:
            return None
        block = self.columns["slot"]
        if (trace.slot.base is not self.base
                or trace.slot.size != self.n_slots
                or trace.slot.dtype != block.dtype):
            return None
        span = trace.slot.__array_interface__["data"][0] \
            - block.__array_interface__["data"][0]
        row, rem = divmod(span, block.strides[0])
        if rem or not 0 <= row < self.n_cols:
            return None
        return int(row)

    def release(self) -> None:
        """Drop every numpy view into the buffer.

        The shm writer calls this before closing its segment handle —
        ``SharedMemory.close`` refuses while buffer exports are alive.
        Existing :meth:`trace` results keep the base alive on their
        own; ``release`` only severs the arena object's references.
        """
        self.columns = {}
        self.base = None
