"""Spatially correlated log-normal shadowing.

Shadow fading is a zero-mean Gaussian process in dB whose spatial
autocorrelation decays exponentially with distance (Gudmundson model):

    rho(dx) = exp(-dx / d_corr)

Along a sampled route the process is generated recursively as an AR(1)
sequence driven by the per-step displacement, which reproduces the
correct correlation for *any* (even non-uniform) sampling.  The
recursion is evaluated with the vectorized varying-coefficient scan of
:func:`repro.channel.fading.ar1_scan` instead of a per-sample Python
loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.fading import ar1_scan


@dataclass(frozen=True)
class CorrelatedShadowing:
    """Gudmundson-correlated log-normal shadowing generator.

    Parameters
    ----------
    sigma_db:
        Standard deviation of the shadowing in dB (TR 38.901: 4 dB UMa
        LOS, 6 dB UMa NLOS, ~7.8 dB UMi NLOS).
    decorrelation_distance_m:
        Distance at which correlation drops to ``1/e`` (37 m UMa, 10 m UMi).
    """

    sigma_db: float = 4.0
    decorrelation_distance_m: float = 37.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if self.decorrelation_distance_m <= 0:
            raise ValueError("decorrelation distance must be positive")

    def correlation(self, displacement_m) -> np.ndarray:
        """Autocorrelation coefficient at a displacement."""
        dx = np.abs(np.asarray(displacement_m, dtype=float))
        return np.exp(-dx / self.decorrelation_distance_m)

    def sample_along(self, displacements_m: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Shadowing series (dB) for a route given per-step displacements.

        ``displacements_m[i]`` is the distance moved between sample ``i-1``
        and sample ``i``; ``displacements_m[0]`` is ignored (the first
        sample is drawn from the stationary distribution).
        """
        displacements = np.asarray(displacements_m, dtype=float)
        if displacements.ndim != 1 or displacements.size == 0:
            raise ValueError("displacements must be a non-empty 1-D array")
        n = displacements.size
        if self.sigma_db == 0.0:
            return np.zeros(n)
        rho = self.correlation(displacements)
        innovations = rng.standard_normal(n)
        noise = self.sigma_db * np.sqrt(1.0 - rho * rho) * innovations
        return ar1_scan(rho, noise, init=self.sigma_db * innovations[0])

    def sample_stationary(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """IID shadowing samples (for a stationary UE re-draws are a single
        constant; callers wanting one value should take element 0)."""
        if n < 1:
            raise ValueError("n must be positive")
        return self.sigma_db * rng.standard_normal(n)
