"""Composite per-slot SINR engine.

Two entry points produce the same artifact — a :class:`ChannelRealization`
holding per-slot SINR / RSRP / RSRQ arrays on the numerology's slot grid:

- :class:`ChannelModel` is geometry-driven: gNB sites, a mobility model,
  TR 38.901 path loss, correlated shadowing, AR(1) fading and (for FR2)
  blockage.  Used for the route experiments (Fig. 7) and the multi-gNB
  coverage study (§4.1, appendix 10.3).
- :class:`SyntheticChannel` is calibration-driven: a base SINR plus fast
  and slow AR(1) components.  Used for the per-operator throughput
  experiments, where the paper's reported distributions (not city maps)
  are the ground truth being matched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.blockage import NO_BLOCKAGE, BlockageProcess
from repro.channel.fading import Ar1Fading
from repro.channel.mobility import MobilityModel, Position, Stationary
from repro.channel.pathloss import UMA, PathLossModel
from repro.channel.shadowing import CorrelatedShadowing
from repro.nr.numerology import Numerology, slot_duration_ms
from repro.nr.signal import db_to_linear, linear_to_db, noise_power_dbm, rsrq_from_sinr

#: Number of slots per large-scale update (50 ms at 30 kHz SCS).
LARGE_SCALE_STRIDE = 100


@dataclass(frozen=True)
class GnbSite:
    """A gNB site in the local coordinate frame."""

    position: Position
    tx_power_dbm: float = 44.0
    antenna_gain_db: float = 8.0


@dataclass
class ChannelRealization:
    """Per-slot channel KPIs for one run.

    Attributes
    ----------
    sinr_db:
        Wideband post-combining SINR per slot.
    rsrp_dbm, rsrq_db:
        Per-slot reference-signal KPIs, as XCAL reports them.
    serving_cell:
        Index of the serving gNB per slot (always 0 for synthetic runs).
    mu:
        Numerology of the slot grid.
    """

    sinr_db: np.ndarray
    rsrp_dbm: np.ndarray
    rsrq_db: np.ndarray
    serving_cell: np.ndarray
    mu: Numerology = Numerology.MU_1

    def __post_init__(self) -> None:
        n = self.sinr_db.size
        for name in ("rsrp_dbm", "rsrq_db", "serving_cell"):
            if getattr(self, name).size != n:
                raise ValueError(f"{name} length mismatch ({getattr(self, name).size} != {n})")

    @property
    def n_slots(self) -> int:
        return int(self.sinr_db.size)

    @property
    def duration_s(self) -> float:
        return self.n_slots * slot_duration_ms(self.mu) * 1e-3

    def times_ms(self) -> np.ndarray:
        """Slot start times in ms."""
        return np.arange(self.n_slots) * slot_duration_ms(self.mu)


def _repeat_to(values: np.ndarray, n_slots: int, stride: int) -> np.ndarray:
    """Expand a coarse (per-stride) series to the slot grid."""
    return np.repeat(values, stride)[:n_slots]


@dataclass
class ChannelModel:
    """Geometry-driven channel: sites + mobility -> per-slot SINR.

    Interference is computed from all non-serving sites scaled by a
    neighbour ``load`` factor; the serving site is the strongest in
    smoothed RSRP (ideal handover, adequate for walking-route scales).
    """

    sites: list[GnbSite]
    frequency_ghz: float = 3.5
    bandwidth_mhz: float = 90.0
    n_rb: int = 245
    pathloss: PathLossModel = field(default_factory=UMA)
    shadowing: CorrelatedShadowing = field(default_factory=CorrelatedShadowing)
    fading_sigma_db: float = 2.0
    blockage: BlockageProcess = NO_BLOCKAGE
    neighbour_load: float = 0.5
    noise_figure_db: float = 9.0
    los: bool = True

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("need at least one gNB site")
        if not 0.0 <= self.neighbour_load <= 1.0:
            raise ValueError("neighbour_load must lie in [0, 1]")

    def received_power_matrix(
        self,
        duration_s: float,
        mobility: MobilityModel | None = None,
        mu: Numerology = Numerology.MU_1,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, float]:
        """Large-scale received power per site along a route.

        Returns ``(rx_dbm, sample_interval_s)`` with ``rx_dbm`` of shape
        ``(n_coarse, n_sites)`` — the input the A3 handover rule
        (:mod:`repro.channel.handover`) consumes.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = rng or np.random.default_rng()
        mobility = mobility or Stationary()
        slot_ms = slot_duration_ms(mu)
        n_slots = max(1, int(round(duration_s * 1000.0 / slot_ms)))
        n_coarse = -(-n_slots // LARGE_SCALE_STRIDE)
        coarse_times = np.arange(n_coarse) * LARGE_SCALE_STRIDE * slot_ms * 1e-3

        positions = mobility.positions_at(coarse_times)  # (n_coarse, 2)
        site_xy = np.array([(s.position.x, s.position.y) for s in self.sites])
        deltas = positions[:, None, :] - site_xy[None, :, :]
        distances = np.maximum(np.hypot(deltas[..., 0], deltas[..., 1]), 1.0)

        # Large-scale received power per site (dBm), with per-site shadowing.
        steps = np.concatenate([[0.0], np.hypot(*np.diff(positions, axis=0).T)])
        rx_dbm = np.empty_like(distances)
        for j, site in enumerate(self.sites):
            pl = self.pathloss.loss_db(distances[:, j], self.frequency_ghz, los=self.los)
            shadow = self.shadowing.sample_along(steps, rng)
            rx_dbm[:, j] = site.tx_power_dbm + site.antenna_gain_db - pl + shadow
        return rx_dbm, LARGE_SCALE_STRIDE * slot_ms * 1e-3

    def realize(
        self,
        duration_s: float,
        mobility: MobilityModel | None = None,
        mu: Numerology = Numerology.MU_1,
        rng: np.random.Generator | None = None,
    ) -> ChannelRealization:
        """Generate a channel realization on the slot grid."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = rng or np.random.default_rng()
        mobility = mobility or Stationary()
        slot_ms = slot_duration_ms(mu)
        n_slots = max(1, int(round(duration_s * 1000.0 / slot_ms)))
        rx_dbm, _ = self.received_power_matrix(duration_s, mobility, mu, rng)
        n_coarse = rx_dbm.shape[0]

        serving_coarse = np.argmax(rx_dbm, axis=1)
        rows = np.arange(n_coarse)
        serving_dbm = rx_dbm[rows, serving_coarse]
        interference_mw = db_to_linear(rx_dbm).sum(axis=1) - db_to_linear(serving_dbm)
        interference_dbm_total = linear_to_db(np.maximum(interference_mw * self.neighbour_load, 1e-12))

        noise_dbm = noise_power_dbm(self.bandwidth_mhz * 1e6, self.noise_figure_db)
        denom_mw = db_to_linear(interference_dbm_total) + db_to_linear(noise_dbm)
        sinr_coarse = serving_dbm - linear_to_db(denom_mw)

        # Expand to the slot grid, add fast fading and blockage.
        sinr = _repeat_to(sinr_coarse, n_slots, LARGE_SCALE_STRIDE)
        fading = Ar1Fading.for_speed(
            mobility.speed_mps, self.frequency_ghz, slot_ms, sigma_db=self.fading_sigma_db
        )
        sinr = sinr + fading.sample(n_slots, rng)
        sinr = sinr - self.blockage.attenuation_db(n_slots, slot_ms, mobility.speed_mps, rng)

        rsrp_coarse = serving_dbm - linear_to_db(12.0 * self.n_rb)
        rsrp = _repeat_to(rsrp_coarse, n_slots, LARGE_SCALE_STRIDE)
        # RSRQ during saturating measurements: the serving cell is fully
        # loaded (load = 1), giving the paper's -10.8..-20 dB range.
        rsrq = rsrq_from_sinr(sinr, load=1.0)
        serving = _repeat_to(serving_coarse, n_slots, LARGE_SCALE_STRIDE)
        return ChannelRealization(sinr, rsrp, np.asarray(rsrq), serving, mu=mu)


@dataclass(frozen=True)
class SyntheticChannel:
    """Calibration-driven channel: base SINR + fast/slow AR(1) components.

    The two time constants reproduce the paper's observation (§5) that
    variability is high below ~100 ms and stabilizes around 0.2-0.5 s:
    the fast component decorrelates within tens of ms, the slow one over
    hundreds of ms.

    Parameters
    ----------
    mean_sinr_db:
        Long-run average wideband SINR.
    fast_sigma_db, fast_coherence_slots:
        Fast fading component.
    slow_sigma_db, slow_coherence_slots:
        Slow (shadowing-scale) component.
    blockage:
        Optional blockage process (mmWave).
    speed_mps:
        UE speed, used only by the blockage process.
    rsrp_ref_dbm:
        RSRP reported alongside (constant; synthetic runs fix geometry).
    """

    mean_sinr_db: float = 18.0
    fast_sigma_db: float = 2.0
    fast_coherence_slots: float = 30.0
    slow_sigma_db: float = 2.5
    slow_coherence_slots: float = 800.0
    blockage: BlockageProcess = NO_BLOCKAGE
    speed_mps: float = 0.0
    rsrp_ref_dbm: float = -85.0
    rsrq_load: float = 1.0

    def realize(
        self,
        duration_s: float,
        mu: Numerology = Numerology.MU_1,
        rng: np.random.Generator | None = None,
        extra_attenuation_db: np.ndarray | None = None,
    ) -> ChannelRealization:
        """Generate a synthetic realization on the slot grid.

        ``extra_attenuation_db`` lets a caller impose a shared per-slot
        attenuation (e.g. one blockage series applied across every
        component carrier of a CA bundle) *instead of* drawing from this
        spec's own blockage process.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = rng or np.random.default_rng()
        slot_ms = slot_duration_ms(mu)
        n_slots = max(1, int(round(duration_s * 1000.0 / slot_ms)))
        fast = Ar1Fading(self.fast_sigma_db, self.fast_coherence_slots)
        slow = Ar1Fading(self.slow_sigma_db, self.slow_coherence_slots)
        sinr = self.mean_sinr_db + fast.sample(n_slots, rng) + slow.sample(n_slots, rng)
        if extra_attenuation_db is not None:
            attenuation = np.asarray(extra_attenuation_db, dtype=float)
            if attenuation.size < n_slots:
                raise ValueError("extra_attenuation_db shorter than the slot grid")
            sinr = sinr - attenuation[:n_slots]
        else:
            sinr = sinr - self.blockage.attenuation_db(n_slots, slot_ms, self.speed_mps, rng)
        rsrp = np.full(n_slots, self.rsrp_ref_dbm)
        rsrq = np.asarray(rsrq_from_sinr(sinr, load=self.rsrq_load))
        serving = np.zeros(n_slots, dtype=np.int64)
        return ChannelRealization(sinr, rsrp, rsrq, serving, mu=mu)
