"""Radio channel models.

Replaces the physical environments of the measurement campaign (Madrid,
Paris, Rome, Munich, Chicago) with the standard 3GPP emulation stack:

- deterministic distance-dependent path loss (:mod:`repro.channel.pathloss`),
- spatially correlated log-normal shadowing (:mod:`repro.channel.shadowing`),
- AR(1) fast fading (:mod:`repro.channel.fading`),
- UE mobility traces (:mod:`repro.channel.mobility`),
- mmWave blockage/outage dynamics (:mod:`repro.channel.blockage`),
- a composite per-slot SINR engine (:mod:`repro.channel.model`).
"""

from repro.channel.pathloss import PathLossModel, UMA, UMI, FreeSpace
from repro.channel.shadowing import CorrelatedShadowing
from repro.channel.fading import Ar1Fading
from repro.channel.mobility import MobilityModel, Stationary, Walking, Driving, RouteTrace
from repro.channel.blockage import BlockageProcess, NO_BLOCKAGE
from repro.channel.mobility import Position
from repro.channel.model import ChannelModel, ChannelRealization, GnbSite, SyntheticChannel

__all__ = [
    "Position",
    "GnbSite",
    "SyntheticChannel",
    "NO_BLOCKAGE",
    "PathLossModel",
    "UMA",
    "UMI",
    "FreeSpace",
    "CorrelatedShadowing",
    "Ar1Fading",
    "MobilityModel",
    "Stationary",
    "Walking",
    "Driving",
    "RouteTrace",
    "BlockageProcess",
    "ChannelModel",
    "ChannelRealization",
]
