"""Fast fading as an AR(1) process on the slot grid.

Small-scale fading varies on the channel's coherence time, which for a
mid-band carrier and pedestrian/vehicular speeds spans a few ms to a few
hundred ms — exactly the range over which the paper's §5 variability
analysis observes 5G throughput to fluctuate before "stabilizing" around
0.2-0.5 s.  We model the effective per-slot SINR perturbation (in dB) as
a stationary AR(1) (Ornstein-Uhlenbeck in discrete time):

    x[t] = rho * x[t-1] + sigma * sqrt(1 - rho^2) * w[t]

with ``rho = exp(-slot / tau)`` where ``tau`` is the coherence time in
slots.  Coherence time follows Clarke's model: ``tau ~ 0.423 / f_d`` with
Doppler ``f_d = v * f_c / c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SPEED_OF_LIGHT = 299_792_458.0


def _ar1_scan_const(a: float, noise: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Constant-coefficient scan body; fills ``x[1:]`` in place.

    The chunk length and per-chunk arithmetic are load-bearing: cached
    campaign traces embed this exact floating-point evaluation order,
    so any change here is a store-schema change.
    """
    n = noise.size
    if a == 0.0:
        x[1:] = noise[1:]
        return x
    # Scaled-prefix-sum scan: x[t]/a^t = x[0] + sum noise[k]/a^k.  For
    # long runs a^-t overflows, so process in bounded-length chunks.
    log_a = -np.log(abs(a))
    chunk = max(16, min(4096, int(600.0 / max(1e-9, log_a)) if abs(a) < 1 else 4096))
    start = 1
    prev = x[0]
    while start < n:
        stop = min(n, start + chunk)
        k = stop - start
        powers = a ** np.arange(1, k + 1)
        scaled = noise[start:stop] / powers
        x[start:stop] = powers * (prev + np.cumsum(scaled))
        prev = x[stop - 1]
        start = stop
    return x


def _ar1_scan_varying(coeff: np.ndarray, noise: np.ndarray,
                      x: np.ndarray) -> np.ndarray:
    """Varying-coefficient scan body; fills ``x[1:]`` in place.

    Within a chunk ``P[t] = prod coeff[start..t]`` (a cumulative
    product) plays the role the constant path's ``a^k`` powers play:
    ``x[t] = P[t] * (x[start-1] + sum noise[k]/P[k])``.  Chunks end
    where the running ``|log P|`` would exceed the float64 dynamic
    range, and a zero coefficient restarts the recursion exactly
    (``x[t] = noise[t]``), which also resets the product.
    """
    n = noise.size
    nonzero = coeff != 0.0
    log_p = np.cumsum(np.where(nonzero, np.log(np.abs(np.where(nonzero, coeff, 1.0))), 0.0))
    zero_at = np.flatnonzero(~nonzero)
    start = 1
    prev = x[0]
    while start < n:
        if not nonzero[start]:
            x[start] = noise[start]
            prev = x[start]
            start += 1
            continue
        j = int(np.searchsorted(zero_at, start))
        segment_end = n if j == zero_at.size else int(zero_at[j])
        window_end = min(segment_end, start + 4096)
        base = log_p[start - 1]
        over = np.flatnonzero(np.abs(log_p[start:window_end] - base) >= 600.0)
        stop = window_end if over.size == 0 else start + int(over[0])
        stop = max(stop, start + 1)
        if stop == start + 1:
            # Degenerate chunk (extreme coefficient): the direct
            # recursion is exact where the scaled scan would overflow.
            x[start] = coeff[start] * prev + noise[start]
        else:
            powers = np.cumprod(coeff[start:stop])
            scaled = noise[start:stop] / powers
            x[start:stop] = powers * (prev + np.cumsum(scaled))
        prev = x[stop - 1]
        start = stop
    return x


def ar1_scan(coeff: float | np.ndarray, noise: np.ndarray,
             init: float) -> np.ndarray:
    """Vectorized first-order linear recurrence (AR(1) scan).

    Evaluates ``x[0] = init`` and ``x[t] = coeff[t] * x[t-1] + noise[t]``
    for ``t >= 1`` in O(n) numpy operations instead of a Python loop.
    ``coeff`` is either a scalar (stationary process — fast fading) or
    an array aligned with ``noise`` (per-step coefficients — spatially
    correlated shadowing on a non-uniform route); element 0 of both
    ``coeff`` and ``noise`` is ignored.

    The scalar path reproduces the historical ``Ar1Fading.sample``
    arithmetic bit for bit; the array path matches the direct recursion
    to floating-point round-off.
    """
    noise = np.asarray(noise, dtype=float)
    if noise.ndim != 1 or noise.size == 0:
        raise ValueError("noise must be a non-empty 1-D array")
    x = np.empty(noise.size)
    x[0] = init
    if noise.size == 1:
        return x
    if np.ndim(coeff) == 0:
        return _ar1_scan_const(float(coeff), noise, x)
    coeff = np.asarray(coeff, dtype=float)
    if coeff.shape != noise.shape:
        raise ValueError("coeff must be a scalar or match noise's shape")
    return _ar1_scan_varying(coeff, noise, x)


def doppler_hz(speed_mps: float, frequency_ghz: float) -> float:
    """Maximum Doppler shift for a UE speed and carrier frequency."""
    if speed_mps < 0:
        raise ValueError("speed must be non-negative")
    return speed_mps * frequency_ghz * 1e9 / SPEED_OF_LIGHT


def coherence_time_s(speed_mps: float, frequency_ghz: float) -> float:
    """Clarke coherence time ``0.423 / f_d`` (inf for a static UE)."""
    fd = doppler_hz(speed_mps, frequency_ghz)
    if fd == 0.0:
        return float("inf")
    return 0.423 / fd


@dataclass(frozen=True)
class Ar1Fading:
    """Stationary AR(1) fading generator on the slot grid.

    Parameters
    ----------
    sigma_db:
        Stationary standard deviation of the SINR perturbation in dB.
    coherence_slots:
        e-folding time of the autocorrelation, in slots.  Use
        :func:`coherence_time_s` divided by the slot duration, or pick a
        value directly when calibrating to measured variability.
    """

    sigma_db: float = 2.5
    coherence_slots: float = 100.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if self.coherence_slots <= 0:
            raise ValueError("coherence_slots must be positive")

    @property
    def rho(self) -> float:
        """One-slot autocorrelation coefficient."""
        return float(np.exp(-1.0 / self.coherence_slots))

    def sample(self, n_slots: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n_slots`` correlated fading samples in dB.

        Vectorized via the scan identity: with ``a = rho`` constant,
        ``x[t] = a^t x[0] + sum_k a^(t-k) b w[k]`` is computed with a
        cumulative product trick in O(n).
        """
        if n_slots < 1:
            raise ValueError("n_slots must be positive")
        if self.sigma_db == 0.0:
            return np.zeros(n_slots)
        a = self.rho
        b = self.sigma_db * np.sqrt(1.0 - a * a)
        w = rng.standard_normal(n_slots)
        return ar1_scan(a, b * w, init=self.sigma_db * w[0])

    @classmethod
    def for_speed(
        cls,
        speed_mps: float,
        frequency_ghz: float,
        slot_duration_ms: float,
        sigma_db: float = 2.5,
        floor_slots: float = 2.0,
    ) -> "Ar1Fading":
        """Build a fading process whose coherence matches a UE speed.

        A stationary UE still sees residual environmental variation
        (scatterer motion); ``floor_slots`` only lower-bounds the
        coherence; stationary UEs get a long (10 s) coherence instead of
        an infinite one.
        """
        tau_s = coherence_time_s(speed_mps, frequency_ghz)
        if np.isinf(tau_s):
            tau_slots = 10_000.0 / slot_duration_ms * 0.5  # ~10 s of slots
        else:
            tau_slots = max(floor_slots, tau_s * 1000.0 / slot_duration_ms)
        return cls(sigma_db=sigma_db, coherence_slots=tau_slots)
