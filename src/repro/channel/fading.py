"""Fast fading as an AR(1) process on the slot grid.

Small-scale fading varies on the channel's coherence time, which for a
mid-band carrier and pedestrian/vehicular speeds spans a few ms to a few
hundred ms — exactly the range over which the paper's §5 variability
analysis observes 5G throughput to fluctuate before "stabilizing" around
0.2-0.5 s.  We model the effective per-slot SINR perturbation (in dB) as
a stationary AR(1) (Ornstein-Uhlenbeck in discrete time):

    x[t] = rho * x[t-1] + sigma * sqrt(1 - rho^2) * w[t]

with ``rho = exp(-slot / tau)`` where ``tau`` is the coherence time in
slots.  Coherence time follows Clarke's model: ``tau ~ 0.423 / f_d`` with
Doppler ``f_d = v * f_c / c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SPEED_OF_LIGHT = 299_792_458.0


def doppler_hz(speed_mps: float, frequency_ghz: float) -> float:
    """Maximum Doppler shift for a UE speed and carrier frequency."""
    if speed_mps < 0:
        raise ValueError("speed must be non-negative")
    return speed_mps * frequency_ghz * 1e9 / SPEED_OF_LIGHT


def coherence_time_s(speed_mps: float, frequency_ghz: float) -> float:
    """Clarke coherence time ``0.423 / f_d`` (inf for a static UE)."""
    fd = doppler_hz(speed_mps, frequency_ghz)
    if fd == 0.0:
        return float("inf")
    return 0.423 / fd


@dataclass(frozen=True)
class Ar1Fading:
    """Stationary AR(1) fading generator on the slot grid.

    Parameters
    ----------
    sigma_db:
        Stationary standard deviation of the SINR perturbation in dB.
    coherence_slots:
        e-folding time of the autocorrelation, in slots.  Use
        :func:`coherence_time_s` divided by the slot duration, or pick a
        value directly when calibrating to measured variability.
    """

    sigma_db: float = 2.5
    coherence_slots: float = 100.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if self.coherence_slots <= 0:
            raise ValueError("coherence_slots must be positive")

    @property
    def rho(self) -> float:
        """One-slot autocorrelation coefficient."""
        return float(np.exp(-1.0 / self.coherence_slots))

    def sample(self, n_slots: int, rng: np.random.Generator) -> np.ndarray:
        """Generate ``n_slots`` correlated fading samples in dB.

        Vectorized via the scan identity: with ``a = rho`` constant,
        ``x[t] = a^t x[0] + sum_k a^(t-k) b w[k]`` is computed with a
        cumulative product trick in O(n).
        """
        if n_slots < 1:
            raise ValueError("n_slots must be positive")
        if self.sigma_db == 0.0:
            return np.zeros(n_slots)
        a = self.rho
        b = self.sigma_db * np.sqrt(1.0 - a * a)
        w = rng.standard_normal(n_slots)
        x = np.empty(n_slots)
        x[0] = self.sigma_db * w[0]
        if n_slots == 1:
            return x
        # Scaled-prefix-sum scan: x[t]/a^t = x[0] + sum b*w[k]/a^k.  For
        # long runs a^-t overflows, so process in bounded-length chunks.
        chunk = max(16, min(4096, int(600.0 / max(1e-9, -np.log(a))) if a < 1 else 4096))
        start = 1
        prev = x[0]
        while start < n_slots:
            stop = min(n_slots, start + chunk)
            k = stop - start
            powers = a ** np.arange(1, k + 1)
            noise = b * w[start:stop]
            scaled = noise / powers
            x[start:stop] = powers * (prev + np.cumsum(scaled))
            prev = x[stop - 1]
            start = stop
        return x

    @classmethod
    def for_speed(
        cls,
        speed_mps: float,
        frequency_ghz: float,
        slot_duration_ms: float,
        sigma_db: float = 2.5,
        floor_slots: float = 2.0,
    ) -> "Ar1Fading":
        """Build a fading process whose coherence matches a UE speed.

        A stationary UE still sees residual environmental variation
        (scatterer motion); ``floor_slots`` only lower-bounds the
        coherence; stationary UEs get a long (10 s) coherence instead of
        an infinite one.
        """
        tau_s = coherence_time_s(speed_mps, frequency_ghz)
        if np.isinf(tau_s):
            tau_slots = 10_000.0 / slot_duration_ms * 0.5  # ~10 s of slots
        else:
            tau_slots = max(floor_slots, tau_s * 1000.0 / slot_duration_ms)
        return cls(sigma_db=sigma_db, coherence_slots=tau_slots)
