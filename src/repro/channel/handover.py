"""Handover (mobility management) between cells of a deployment.

The geometric channel engine's default serving-cell rule is an ideal
per-sample argmax of RSRP.  Real networks run the A3 event machinery:
a handover fires only after a neighbour stays ``hysteresis_db`` better
than the serving cell for ``time_to_trigger_s`` — which is why walking
routes show sticky serving cells, occasional ping-pongs, and short
degraded stretches before each switch (the Fig. 7 route behaviour).

:class:`A3Handover` converts per-sample per-site received powers into a
serving-cell series under that rule and reports the handover events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HandoverEvent:
    """One completed handover."""

    sample_index: int
    source_cell: int
    target_cell: int


@dataclass(frozen=True)
class HandoverResult:
    """Outcome of applying the A3 rule to a route."""

    serving: np.ndarray            # serving cell per sample
    events: tuple[HandoverEvent, ...]

    @property
    def n_handovers(self) -> int:
        return len(self.events)

    def ping_pong_count(self, window_samples: int) -> int:
        """Handovers that return to the previous cell within a window."""
        count = 0
        for i in range(1, len(self.events)):
            previous, current = self.events[i - 1], self.events[i]
            if (current.target_cell == previous.source_cell
                    and current.sample_index - previous.sample_index <= window_samples):
                count += 1
        return count


@dataclass(frozen=True)
class A3Handover:
    """The A3-event handover rule.

    Parameters
    ----------
    hysteresis_db:
        How much better a neighbour must measure than the serving cell.
    time_to_trigger_s:
        How long the condition must hold before the handover executes.
    sample_interval_s:
        Time between consecutive rows of the RSRP matrix.
    """

    hysteresis_db: float = 3.0
    time_to_trigger_s: float = 0.32
    sample_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.hysteresis_db < 0:
            raise ValueError("hysteresis must be non-negative")
        if self.time_to_trigger_s < 0:
            raise ValueError("time_to_trigger must be non-negative")
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval must be positive")

    @property
    def trigger_samples(self) -> int:
        """Consecutive samples the A3 condition must hold."""
        return max(1, int(round(self.time_to_trigger_s / self.sample_interval_s)))

    def apply(self, rx_dbm: np.ndarray, initial_cell: int | None = None) -> HandoverResult:
        """Run the rule over an ``(n_samples, n_cells)`` RSRP matrix."""
        rx_dbm = np.asarray(rx_dbm, dtype=float)
        if rx_dbm.ndim != 2 or rx_dbm.shape[1] < 1:
            raise ValueError("rx_dbm must be (n_samples, n_cells)")
        n_samples, n_cells = rx_dbm.shape
        serving = np.empty(n_samples, dtype=np.int64)
        current = int(np.argmax(rx_dbm[0])) if initial_cell is None else initial_cell
        if not 0 <= current < n_cells:
            raise ValueError("initial_cell out of range")
        events: list[HandoverEvent] = []
        candidate = -1
        held = 0
        for i in range(n_samples):
            best = int(np.argmax(rx_dbm[i]))
            a3 = (best != current
                  and rx_dbm[i, best] >= rx_dbm[i, current] + self.hysteresis_db)
            if a3:
                if best == candidate:
                    held += 1
                else:
                    candidate, held = best, 1
                if held >= self.trigger_samples:
                    events.append(HandoverEvent(i, current, best))
                    current = best
                    candidate, held = -1, 0
            else:
                candidate, held = -1, 0
            serving[i] = current
        return HandoverResult(serving=serving, events=tuple(events))


def handover_interruption_mask(result: HandoverResult, n_samples: int,
                               interruption_samples: int) -> np.ndarray:
    """Boolean mask of samples lost to handover interruption.

    NSA handovers interrupt the user plane for tens of ms; the mask can
    be multiplied into a throughput series to account for it.
    """
    if interruption_samples < 0:
        raise ValueError("interruption_samples must be non-negative")
    mask = np.zeros(n_samples, dtype=bool)
    for event in result.events:
        mask[event.sample_index:event.sample_index + interruption_samples] = True
    return mask
