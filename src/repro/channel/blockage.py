"""mmWave blockage and outage dynamics (for the §7 comparison).

FR2 links are line-of-sight-critical: bodies, vehicles and street
furniture cause deep, abrupt fades, and at driving speeds the beam
management loop loses track entirely, producing outages during which the
service falls back to LTE or mid-band (§7, [31, 57, 58]).  We model the
link state as a two-state Markov chain (CLEAR / BLOCKED) sampled per
slot, with transition rates scaled by UE speed, plus a deep attenuation
in the blocked state.

Mid-band channels are far less obstruction-sensitive; the same process
with a near-zero blockage rate reproduces their stability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BlockageProcess:
    """Two-state Markov blockage process on the slot grid.

    Parameters
    ----------
    blockage_rate_hz:
        Expected CLEAR→BLOCKED transitions per second.
    mean_blockage_duration_s:
        Mean sojourn in the BLOCKED state.
    blockage_attenuation_db:
        Extra path loss while blocked (20-30 dB is typical at 28 GHz;
        effectively an outage).
    speed_scaling:
        Multiplier applied to ``blockage_rate_hz`` per m/s of UE speed
        above zero; faster UEs sweep more blockers per second.
    """

    blockage_rate_hz: float = 0.2
    mean_blockage_duration_s: float = 0.5
    blockage_attenuation_db: float = 25.0
    speed_scaling: float = 0.35

    def __post_init__(self) -> None:
        if self.blockage_rate_hz < 0:
            raise ValueError("blockage_rate_hz must be non-negative")
        if self.mean_blockage_duration_s <= 0:
            raise ValueError("mean_blockage_duration_s must be positive")
        if self.blockage_attenuation_db < 0:
            raise ValueError("attenuation must be non-negative")

    def effective_rate_hz(self, speed_mps: float) -> float:
        """Blockage arrival rate scaled by UE speed."""
        if speed_mps < 0:
            raise ValueError("speed must be non-negative")
        return self.blockage_rate_hz * (1.0 + self.speed_scaling * speed_mps)

    def sample_states(
        self,
        n_slots: int,
        slot_duration_ms: float,
        speed_mps: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boolean array: ``True`` where the link is blocked.

        Sojourn times in each state are exponential, sampled directly and
        painted onto the slot grid (much faster than per-slot coin flips).
        """
        if n_slots < 1:
            raise ValueError("n_slots must be positive")
        rate = self.effective_rate_hz(speed_mps)
        blocked = np.zeros(n_slots, dtype=bool)
        if rate == 0.0:
            return blocked
        slot_s = slot_duration_ms * 1e-3
        total_s = n_slots * slot_s
        t = 0.0
        in_blockage = False
        while t < total_s:
            if in_blockage:
                duration = rng.exponential(self.mean_blockage_duration_s)
                start = int(t / slot_s)
                stop = min(n_slots, int(np.ceil((t + duration) / slot_s)))
                blocked[start:stop] = True
            else:
                duration = rng.exponential(1.0 / rate)
            t += duration
            in_blockage = not in_blockage
        return blocked

    def attenuation_db(
        self,
        n_slots: int,
        slot_duration_ms: float,
        speed_mps: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-slot extra attenuation in dB (0 when clear)."""
        states = self.sample_states(n_slots, slot_duration_ms, speed_mps, rng)
        return np.where(states, self.blockage_attenuation_db, 0.0)


#: A process that never blocks (mid-band default).
NO_BLOCKAGE = BlockageProcess(blockage_rate_hz=0.0)
