"""Distance-dependent path loss (3GPP TR 38.901 §7.4.1).

Implements the urban-macro (UMa) and urban-micro street-canyon (UMi)
models used to emulate the paper's city environments, plus free space as
a reference.  All models return path loss in dB for a 3-D distance and a
carrier frequency; LOS/NLOS variants are separate methods so the
composite channel can mix them along a route.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

SPEED_OF_LIGHT = 299_792_458.0


def _as_array(x) -> np.ndarray:
    return np.asarray(x, dtype=float)


class PathLossModel(abc.ABC):
    """Interface: path loss in dB at 3-D distance ``d`` (m), frequency ``f`` (GHz)."""

    @abc.abstractmethod
    def loss_db(self, distance_m, frequency_ghz: float, los: bool = True):
        """Path loss in dB (vectorized over distance)."""

    def __call__(self, distance_m, frequency_ghz: float, los: bool = True):
        return self.loss_db(distance_m, frequency_ghz, los)


@dataclass(frozen=True)
class FreeSpace(PathLossModel):
    """Free-space path loss: ``20 log10(4 pi d f / c)``."""

    def loss_db(self, distance_m, frequency_ghz: float, los: bool = True):
        d = np.maximum(_as_array(distance_m), 1.0)
        f_hz = frequency_ghz * 1e9
        return 20.0 * np.log10(4.0 * math.pi * d * f_hz / SPEED_OF_LIGHT)


@dataclass(frozen=True)
class UMA(PathLossModel):
    """TR 38.901 urban macro (UMa) path loss.

    Simplified to the d < d_BP regime (PL1) which covers the paper's
    measurement distances (tens to a few hundred meters):

    - LOS:  ``28.0 + 22 log10(d) + 20 log10(f)``
    - NLOS: ``max(LOS, 13.54 + 39.08 log10(d) + 20 log10(f) - 0.6 (h_ut - 1.5))``
    """

    ue_height_m: float = 1.5

    def loss_db(self, distance_m, frequency_ghz: float, los: bool = True):
        d = np.maximum(_as_array(distance_m), 1.0)
        log_d = np.log10(d)
        log_f = math.log10(frequency_ghz)
        pl_los = 28.0 + 22.0 * log_d + 20.0 * log_f
        if los:
            return pl_los
        pl_nlos = 13.54 + 39.08 * log_d + 20.0 * log_f - 0.6 * (self.ue_height_m - 1.5)
        return np.maximum(pl_los, pl_nlos)


@dataclass(frozen=True)
class UMI(PathLossModel):
    """TR 38.901 urban micro street canyon (UMi) path loss (d < d_BP).

    - LOS:  ``32.4 + 21 log10(d) + 20 log10(f)``
    - NLOS: ``max(LOS, 22.4 + 35.3 log10(d) + 21.3 log10(f) - 0.3 (h_ut - 1.5))``
    """

    ue_height_m: float = 1.5

    def loss_db(self, distance_m, frequency_ghz: float, los: bool = True):
        d = np.maximum(_as_array(distance_m), 1.0)
        log_d = np.log10(d)
        log_f = math.log10(frequency_ghz)
        pl_los = 32.4 + 21.0 * log_d + 20.0 * log_f
        if los:
            return pl_los
        pl_nlos = 22.4 + 35.3 * log_d + 21.3 * log_f - 0.3 * (self.ue_height_m - 1.5)
        return np.maximum(pl_los, pl_nlos)


def los_probability_uma(distance_m) -> np.ndarray:
    """TR 38.901 UMa LOS probability for UE height <= 13 m."""
    d = _as_array(distance_m)
    d2d = np.maximum(d, 1e-9)
    prob = np.where(
        d2d <= 18.0,
        1.0,
        (18.0 / d2d + np.exp(-d2d / 63.0) * (1.0 - 18.0 / d2d)),
    )
    return np.clip(prob, 0.0, 1.0)


def los_probability_umi(distance_m) -> np.ndarray:
    """TR 38.901 UMi LOS probability."""
    d = _as_array(distance_m)
    d2d = np.maximum(d, 1e-9)
    prob = np.where(
        d2d <= 18.0,
        1.0,
        (18.0 / d2d + np.exp(-d2d / 36.0) * (1.0 - 18.0 / d2d)),
    )
    return np.clip(prob, 0.0, 1.0)
