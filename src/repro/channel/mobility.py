"""UE mobility models: stationary, walking, driving, explicit routes.

The campaign measured stationary UEs (on flat surfaces), walking routes
(Fig. 7's RSRQ map) and driving (§7's mid-band vs mmWave comparison).
A mobility model produces the UE position sampled on an arbitrary time
grid; the channel engine converts positions to gNB distances.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Position:
    """A 2-D position in meters (local ENU-style coordinates)."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class MobilityModel(abc.ABC):
    """Interface: positions at given times."""

    @abc.abstractmethod
    def positions_at(self, times_s: np.ndarray) -> np.ndarray:
        """Array of shape ``(len(times_s), 2)`` with (x, y) in meters."""

    @property
    @abc.abstractmethod
    def speed_mps(self) -> float:
        """Nominal speed (drives the fading coherence time)."""

    def displacements(self, times_s: np.ndarray) -> np.ndarray:
        """Per-step displacement magnitudes (first entry 0)."""
        pos = self.positions_at(np.asarray(times_s, dtype=float))
        deltas = np.diff(pos, axis=0)
        steps = np.hypot(deltas[:, 0], deltas[:, 1])
        return np.concatenate([[0.0], steps])


@dataclass(frozen=True)
class Stationary(MobilityModel):
    """A UE fixed at one position (phones on flat surfaces, §2 step 4)."""

    position: Position = field(default_factory=lambda: Position(0.0, 0.0))

    def positions_at(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=float)
        out = np.empty((times.size, 2))
        out[:, 0] = self.position.x
        out[:, 1] = self.position.y
        return out

    @property
    def speed_mps(self) -> float:
        return 0.0


@dataclass(frozen=True)
class _ConstantVelocity(MobilityModel):
    """Straight-line constant-velocity motion."""

    start: Position = field(default_factory=lambda: Position(0.0, 0.0))
    heading_deg: float = 0.0
    _speed_mps: float = 1.4

    def positions_at(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=float)
        heading = math.radians(self.heading_deg)
        dx = self._speed_mps * math.cos(heading)
        dy = self._speed_mps * math.sin(heading)
        out = np.empty((times.size, 2))
        out[:, 0] = self.start.x + dx * times
        out[:, 1] = self.start.y + dy * times
        return out

    @property
    def speed_mps(self) -> float:
        return self._speed_mps


def Walking(start: Position | None = None, heading_deg: float = 0.0, speed_mps: float = 1.4) -> _ConstantVelocity:
    """Pedestrian motion (default 1.4 m/s ~ 5 km/h)."""
    if speed_mps <= 0:
        raise ValueError("walking speed must be positive")
    return _ConstantVelocity(start or Position(0.0, 0.0), heading_deg, speed_mps)


def Driving(start: Position | None = None, heading_deg: float = 0.0, speed_mps: float = 11.0) -> _ConstantVelocity:
    """Vehicular motion (default 11 m/s ~ 40 km/h urban driving)."""
    if speed_mps <= 0:
        raise ValueError("driving speed must be positive")
    return _ConstantVelocity(start or Position(0.0, 0.0), heading_deg, speed_mps)


@dataclass(frozen=True)
class RouteTrace(MobilityModel):
    """Piecewise-linear motion through waypoints at constant speed.

    Used for the Fig. 7 walking-route experiment where the UE walks the
    same street route under two different deployments.
    """

    waypoints: tuple[Position, ...]
    _speed_mps: float = 1.4

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a route needs at least two waypoints")
        if self._speed_mps <= 0:
            raise ValueError("speed must be positive")

    @property
    def speed_mps(self) -> float:
        return self._speed_mps

    @property
    def segment_lengths(self) -> np.ndarray:
        points = np.array([(p.x, p.y) for p in self.waypoints])
        deltas = np.diff(points, axis=0)
        return np.hypot(deltas[:, 0], deltas[:, 1])

    @property
    def total_length_m(self) -> float:
        return float(self.segment_lengths.sum())

    @property
    def duration_s(self) -> float:
        """Time to traverse the whole route."""
        return self.total_length_m / self._speed_mps

    def positions_at(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=float)
        points = np.array([(p.x, p.y) for p in self.waypoints])
        lengths = self.segment_lengths
        cumulative = np.concatenate([[0.0], np.cumsum(lengths)])
        # Distance along the route, clamped at the endpoint (UE stops).
        s = np.clip(times * self._speed_mps, 0.0, cumulative[-1])
        seg = np.clip(np.searchsorted(cumulative, s, side="right") - 1, 0, len(lengths) - 1)
        seg_start = cumulative[seg]
        seg_len = np.where(lengths[seg] > 0, lengths[seg], 1.0)
        frac = (s - seg_start) / seg_len
        start_points = points[seg]
        end_points = points[seg + 1]
        return start_points + (end_points - start_points) * frac[:, None]
