"""Shared/remote tier for the content-addressed trace store.

A :class:`~repro.store.backend.TraceStore` is single-machine; this
module moves its sharded ``npz`` + sidecar blobs between peers so a
fleet of CI machines and collaborators share warm caches.  Three design
facts make the tier simple:

- **Keys are content-addressed** (task fingerprints salted with the
  store schema), so two stores can only ever disagree about *which*
  keys they hold, never about what a key means.  Sync is mergeable by
  construction: push uploads local-only keys, pull downloads
  remote-only keys, and shared keys are left alone.
- **A sidecar implies a complete payload** (local writes land payload
  first, atomically), so the inventory on either side is just the set
  of sidecar files.
- **Every blob carries its own integrity proof** — the sidecar's
  SHA-256 of the payload plus the key it was written under.  Pulls
  re-verify both before a blob enters the local store; mismatches are
  quarantined, never installed, so a corrupted or malicious peer can
  cost a download but not poison a cache.

The wire contract is the :class:`RemoteStore` protocol (list / fetch /
store of raw blob bytes).  :class:`LocalDirectoryRemote` is the
reference backend — a plain directory in the same sharded layout,
reachable as a path or ``file://`` URL — and doubles as the peer-cache
transport when the directory is network-mounted.  New schemes register
through :func:`register_remote_scheme`.

Remote operations are wrapped in bounded retries with exponential
backoff and a per-operation deadline (:class:`RetryPolicy`): a flaky
peer degrades to a slower sync, a dead one fails the single blob after
``attempts`` tries and the batch reports it, rather than hanging a
campaign.
"""

from __future__ import annotations

import json
import os
import time
import urllib.parse
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.store.backend import TraceStore

__all__ = [
    "LocalDirectoryRemote",
    "RemoteError",
    "RemoteStore",
    "RetryPolicy",
    "SyncReport",
    "open_remote",
    "pull",
    "push",
    "register_remote_scheme",
    "status",
    "sync",
]


class RemoteError(RuntimeError):
    """A remote operation failed (after retries, for retried ops)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries for one remote operation.

    ``attempts`` total tries; sleeps ``backoff_s * 2**try`` (capped at
    ``max_backoff_s``) between them; gives up early once ``timeout_s``
    of wall time has elapsed.  The defaults suit a same-host or
    LAN-mounted peer; point a slow object store at larger values.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0 or self.timeout_s <= 0:
            raise ValueError("backoff/timeout values must be positive")

    def run(self, op: Callable[[], Any], describe: str) -> Any:
        """``op()`` with this policy; raises :class:`RemoteError` when
        every attempt failed or the deadline passed."""
        deadline = time.monotonic() + self.timeout_s
        last: Exception | None = None
        for attempt in range(self.attempts):
            try:
                return op()
            except (RemoteError, OSError) as exc:
                last = exc
                if attempt + 1 >= self.attempts:
                    break
                delay = min(self.backoff_s * (2 ** attempt), self.max_backoff_s)
                if time.monotonic() + delay >= deadline:
                    break
                time.sleep(delay)
        raise RemoteError(f"{describe} failed after "
                          f"{min(self.attempts, attempt + 1)} attempts: {last}") from last


@runtime_checkable
class RemoteStore(Protocol):
    """What a remote backend must provide: raw blob transport.

    Blobs are opaque ``(payload, sidecar)`` byte pairs — remotes never
    decode traces.  ``store`` must be atomic per blob (a reader may not
    observe a torn entry) and last-writer-wins; since keys are content
    hashes, concurrent writers of the same key write the same bytes.
    """

    def describe(self) -> str:
        """Human-readable location (for reports and errors)."""
        ...

    def list_keys(self) -> set[str]:
        """Keys of every complete blob the remote holds."""
        ...

    def fetch(self, key: str) -> tuple[bytes, bytes]:
        """``(payload, sidecar)`` bytes of ``key``; raises
        :class:`RemoteError` (or ``OSError``) when absent/unreadable."""
        ...

    def store(self, key: str, payload: bytes, sidecar: bytes) -> None:
        """Atomically install a blob under ``key``."""
        ...


class LocalDirectoryRemote:
    """Reference :class:`RemoteStore`: a directory in the store layout.

    ``objects/<k[:2]>/<key>.npz`` + ``.json``, atomic payload-first
    writes — byte-compatible with a :class:`TraceStore` root, so a
    pushed-to directory can itself be opened as a local store (and CI
    can diff the two trees byte for byte).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        (self.root / "objects").mkdir(parents=True, exist_ok=True)

    def describe(self) -> str:
        return str(self.root)

    def _paths(self, key: str) -> tuple[Path, Path]:
        shard = self.root / "objects" / key[:2]
        return shard / f"{key}.npz", shard / f"{key}.json"

    def list_keys(self) -> set[str]:
        return {path.stem for path in (self.root / "objects").glob("*/*.json")}

    def fetch(self, key: str) -> tuple[bytes, bytes]:
        payload_path, sidecar_path = self._paths(key)
        try:
            return payload_path.read_bytes(), sidecar_path.read_bytes()
        except FileNotFoundError as exc:
            raise RemoteError(f"remote {self.root} has no blob {key}") from exc

    def store(self, key: str, payload: bytes, sidecar: bytes) -> None:
        payload_path, sidecar_path = self._paths(key)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(payload_path, payload)
        _atomic_write(sidecar_path, sidecar)


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.parent / f".{path.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
    tmp.write_bytes(data)
    os.replace(tmp, path)


# --------------------------------------------------------------------- #
# Scheme registry
# --------------------------------------------------------------------- #
_SCHEMES: dict[str, Callable[[str], RemoteStore]] = {}


def register_remote_scheme(scheme: str,
                           factory: Callable[[str], RemoteStore]) -> None:
    """Register ``factory(url) -> RemoteStore`` for ``scheme://`` URLs."""
    _SCHEMES[scheme.lower()] = factory


def open_remote(url: str | Path) -> RemoteStore:
    """Open a remote by URL or plain path.

    A bare path or a ``file://`` URL opens the reference
    :class:`LocalDirectoryRemote`; other schemes resolve through
    :func:`register_remote_scheme`.
    """
    text = str(url)
    parsed = urllib.parse.urlparse(text)
    # Windows drive letters and bare paths parse with empty/1-char scheme.
    if len(parsed.scheme) <= 1:
        return LocalDirectoryRemote(text)
    if parsed.scheme == "file":
        return LocalDirectoryRemote(urllib.parse.unquote(parsed.path) or "/")
    factory = _SCHEMES.get(parsed.scheme.lower())
    if factory is None:
        known = sorted({"file", *_SCHEMES})
        raise ValueError(f"unknown remote scheme {parsed.scheme!r} in {text!r}; "
                         f"known: {known}")
    return factory(text)


# --------------------------------------------------------------------- #
# Sync operations
# --------------------------------------------------------------------- #
@dataclass
class SyncReport:
    """Outcome of one push/pull/sync batch."""

    pushed: int = 0
    pulled: int = 0
    skipped: int = 0       #: keys the destination already held
    quarantined: int = 0   #: blobs that failed integrity verification
    failed: list[str] = field(default_factory=list)  #: keys lost to remote errors
    bytes_moved: int = 0

    def merge(self, other: "SyncReport") -> "SyncReport":
        return SyncReport(
            pushed=self.pushed + other.pushed,
            pulled=self.pulled + other.pulled,
            skipped=self.skipped + other.skipped,
            quarantined=self.quarantined + other.quarantined,
            failed=self.failed + other.failed,
            bytes_moved=self.bytes_moved + other.bytes_moved,
        )

    def render(self) -> str:
        text = (f"pushed={self.pushed} pulled={self.pulled} "
                f"skipped={self.skipped} quarantined={self.quarantined} "
                f"failed={len(self.failed)} "
                f"moved={self.bytes_moved / 1e6:.2f}MB")
        return text


def _verify_blob(key: str, payload: bytes, sidecar_bytes: bytes) -> str | None:
    """``None`` when the blob proves out; else a reason string.

    Integrity rides two checks: the payload hashes to the sidecar's
    recorded SHA-256, and the sidecar was written for this very key —
    a remote that serves blob A under key B fails here even though A
    is internally consistent.
    """
    try:
        sidecar = json.loads(sidecar_bytes)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return "unreadable sidecar"
    if sidecar.get("key") != key:
        return f"sidecar written for key {sidecar.get('key')!r}"
    if sha256(payload).hexdigest() != sidecar.get("sha256"):
        return "payload hash mismatch"
    return None


def _quarantine_foreign(store: TraceStore, key: str, payload: bytes,
                        sidecar_bytes: bytes) -> None:
    """Park a bad *pulled* blob in the store's quarantine.

    It never touches ``objects/`` — the local store stays clean and the
    key reads as a miss — but the bytes are kept for forensics, like a
    locally corrupted entry would be.
    """
    quarantine = store.root / "quarantine"
    _atomic_write(quarantine / f"{key}.npz", payload)
    _atomic_write(quarantine / f"{key}.json", sidecar_bytes)


def push(store: TraceStore, remote: RemoteStore, *,
         keys: Iterable[str] | None = None,
         policy: RetryPolicy | None = None) -> SyncReport:
    """Upload local entries the remote lacks; returns a report.

    Local blobs are re-verified before they leave the machine — a
    locally corrupted entry is quarantined here exactly as a read
    would, instead of being propagated to every peer.
    """
    policy = policy or RetryPolicy()
    report = SyncReport()
    have = policy.run(remote.list_keys, f"list {remote.describe()}")
    wanted = store.keys() if keys is None else list(keys)
    for key in wanted:
        if key in have:
            report.skipped += 1
            continue
        payload_path, sidecar_path = store.object_paths(key)
        try:
            payload = payload_path.read_bytes()
            sidecar_bytes = sidecar_path.read_bytes()
        except FileNotFoundError:
            continue  # evicted since the inventory snapshot
        reason = _verify_blob(key, payload, sidecar_bytes)
        if reason is not None:
            store._quarantine(key)
            report.quarantined += 1
            continue
        try:
            policy.run(lambda: remote.store(key, payload, sidecar_bytes),
                       f"push {key[:12]} to {remote.describe()}")
        except RemoteError:
            report.failed.append(key)
            continue
        report.pushed += 1
        report.bytes_moved += len(payload) + len(sidecar_bytes)
    return report


def pull(store: TraceStore, remote: RemoteStore, *,
         keys: Iterable[str] | None = None,
         policy: RetryPolicy | None = None) -> SyncReport:
    """Download remote entries the local store lacks; returns a report.

    Every fetched blob is verified (payload hash against the sidecar,
    sidecar against the key) before it is installed — payload first,
    sidecar second, atomically, the same torn-entry-free discipline as
    local writes.  Mismatches are quarantined and the key stays a local
    miss.
    """
    policy = policy or RetryPolicy()
    report = SyncReport()
    have = set(store.keys())
    available = policy.run(remote.list_keys, f"list {remote.describe()}")
    wanted = sorted(available) if keys is None else list(keys)
    for key in wanted:
        if key in have:
            report.skipped += 1
            continue
        try:
            payload, sidecar_bytes = policy.run(
                lambda: remote.fetch(key),
                f"pull {key[:12]} from {remote.describe()}")
        except RemoteError:
            report.failed.append(key)
            continue
        reason = _verify_blob(key, payload, sidecar_bytes)
        if reason is not None:
            _quarantine_foreign(store, key, payload, sidecar_bytes)
            report.quarantined += 1
            continue
        payload_path, sidecar_path = store.object_paths(key)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(payload_path, payload)
        _atomic_write(sidecar_path, sidecar_bytes)
        report.pulled += 1
        report.bytes_moved += len(payload) + len(sidecar_bytes)
    if report.pulled and store.max_bytes is not None:
        store.evict(store.max_bytes)
    return report


def sync(store: TraceStore, remote: RemoteStore, *,
         policy: RetryPolicy | None = None) -> SyncReport:
    """Bidirectional merge: push local-only keys, pull remote-only keys.

    Content addressing makes this conflict-free — after a sync both
    sides hold the union, and re-syncing is a no-op.
    """
    report = push(store, remote, policy=policy)
    return report.merge(pull(store, remote, policy=policy))


@dataclass(frozen=True)
class SyncStatus:
    """Inventory diff between a local store and a remote."""

    local_only: int
    remote_only: int
    shared: int
    local_only_bytes: int

    def render(self) -> str:
        return (f"local-only={self.local_only} "
                f"({self.local_only_bytes / 1e6:.2f}MB to push) "
                f"remote-only={self.remote_only} shared={self.shared}")


def status(store: TraceStore, remote: RemoteStore, *,
           policy: RetryPolicy | None = None) -> SyncStatus:
    """What a push/pull would move, without moving anything."""
    policy = policy or RetryPolicy()
    local = set(store.keys())
    remote_keys = policy.run(remote.list_keys, f"list {remote.describe()}")
    local_only = local - remote_keys
    pending_bytes = 0
    for key in local_only:
        payload_path, sidecar_path = store.object_paths(key)
        try:
            pending_bytes += payload_path.stat().st_size + sidecar_path.stat().st_size
        except FileNotFoundError:
            continue
    return SyncStatus(local_only=len(local_only),
                      remote_only=len(remote_keys - local),
                      shared=len(local & remote_keys),
                      local_only_bytes=pending_bytes)
