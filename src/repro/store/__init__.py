"""Content-addressed session trace store.

``repro.store`` memoizes the repository's expensive unit of work — one
simulated measurement session — behind a disk cache, so overlapping
analyses (Table 1, Figs. 1/12/14, the campaign exporter, benchmarks)
simulate each session once and replay it from columnar npz blobs ever
after.

- :mod:`repro.store.keys` — canonical task fingerprints (what a session
  computes, hashed stably across processes);
- :mod:`repro.store.codec` — session results <-> deterministic npz;
- :mod:`repro.store.backend` — the sharded, hash-verified, atomically
  written on-disk store with quarantine and LRU eviction;
- :mod:`repro.store.remote` — the shared tier: push/pull/sync of raw
  blobs between a local store and a peer (content-addressed keys make
  the merge conflict-free), with pull-side integrity verification.

Wire-up lives in :func:`repro.core.runner.run_tasks` (``store=`` splits
a manifest into hits and misses) and the ``--cache`` / ``repro cache``
CLI surface (``repro cache push|pull|sync|status`` for the remote
tier).
"""

from repro.store.backend import CACHE_DIR_ENV, CACHE_MAX_MB_ENV, StoreStats, TraceStore
from repro.store.codec import CODEC_VERSION, decode, encode
from repro.store.keys import (
    STORE_SCHEMA_VERSION,
    UnfingerprintableTask,
    canonical_json,
    task_fingerprint,
)
from repro.store.remote import (
    LocalDirectoryRemote,
    RemoteError,
    RemoteStore,
    RetryPolicy,
    SyncReport,
    open_remote,
    pull,
    push,
    register_remote_scheme,
    status,
    sync,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_MAX_MB_ENV",
    "CODEC_VERSION",
    "LocalDirectoryRemote",
    "RemoteError",
    "RemoteStore",
    "RetryPolicy",
    "STORE_SCHEMA_VERSION",
    "StoreStats",
    "SyncReport",
    "TraceStore",
    "UnfingerprintableTask",
    "canonical_json",
    "decode",
    "encode",
    "open_remote",
    "pull",
    "push",
    "register_remote_scheme",
    "status",
    "sync",
    "task_fingerprint",
]
