"""Disk-backed, content-addressed store for session results.

Layout (sharded on the first two key hex digits so no directory grows
unbounded)::

    <root>/
      objects/<k[:2]>/<key>.npz    # columnar payload (repro.store.codec)
      objects/<k[:2]>/<key>.json   # sidecar: sha256, size, fn, label, ...
      quarantine/                  # corrupted entries, moved aside

Every write is atomic (temp file in the destination directory +
``os.replace``), payload before sidecar, so concurrent ``--jobs N``
workers and parallel pytest runs never observe a torn entry: a sidecar
implies a complete payload.  Reads verify the sidecar's SHA-256 against
the payload bytes; any mismatch, unreadable sidecar, or decode failure
*quarantines* the entry and reports a miss — corruption is always
recompute-and-heal, never an error.

The sidecar's mtime doubles as the LRU clock: hits touch it, and
:meth:`TraceStore.evict` removes oldest-accessed entries until the
store fits a byte budget (applied automatically after every ``put``
when the store was created with ``max_bytes``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any, Iterator

from repro.store import codec
from repro.store.keys import (
    STORE_SCHEMA_VERSION,
    UnfingerprintableTask,
    task_fingerprint,
)

__all__ = ["StoreStats", "TraceStore"]

#: Environment variables the CLI and :meth:`TraceStore.from_env` honor.
CACHE_DIR_ENV = "REPRO_CACHE"
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"


@dataclass(frozen=True)
class StoreStats:
    """Aggregate state of a store (plus this process's hit/miss tally)."""

    root: str
    entries: int
    total_bytes: int
    quarantined: int
    hits: int
    misses: int
    bytes_read: int = 0
    bytes_written: int = 0

    def render(self) -> str:
        return (f"store {self.root}: {self.entries} entries, "
                f"{self.total_bytes / 1e6:.2f} MB, "
                f"{self.quarantined} quarantined; "
                f"session hits={self.hits} misses={self.misses} "
                f"read={self.bytes_read / 1e6:.2f}MB "
                f"written={self.bytes_written / 1e6:.2f}MB")

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable counters — one serializer for ``repro cache
        stats --json``, the serve daemon's ``/stats`` endpoint and CI
        gates, so the three can never drift apart."""
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "quarantined": self.quarantined,
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


class TraceStore:
    """Content-addressed cache of simulated session results."""

    def __init__(self, root: str | Path, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.salt = STORE_SCHEMA_VERSION * 1000 + codec.CODEC_VERSION
        self.hits = 0
        self.misses = 0
        #: Payload bytes this process moved through the store.  Reads
        #: count hits *and* store-routed materializations; writes count
        #: local puts plus routed worker writes reported via
        #: :meth:`note_routed_write`.
        self.bytes_read = 0
        self.bytes_written = 0
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        (self.root / "quarantine").mkdir(parents=True, exist_ok=True)

    @classmethod
    def from_env(cls, root: str | Path | None = None) -> "TraceStore | None":
        """Store from ``root`` or ``$REPRO_CACHE``; ``None`` if neither set.

        ``$REPRO_CACHE_MAX_MB`` supplies the LRU size cap.
        """
        root = root or os.environ.get(CACHE_DIR_ENV) or None
        if root is None:
            return None
        max_mb = os.environ.get(CACHE_MAX_MB_ENV)
        max_bytes = int(float(max_mb) * 1e6) if max_mb else None
        return cls(root, max_bytes=max_bytes)

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    def task_key(self, task: Any) -> str | None:
        """Fingerprint of a session task, or ``None`` if uncacheable."""
        try:
            return task_fingerprint(task, salt=self.salt)
        except UnfingerprintableTask:
            return None

    def _paths(self, key: str) -> tuple[Path, Path]:
        shard = self.root / "objects" / key[:2]
        return shard / f"{key}.npz", shard / f"{key}.json"

    def _sidecars(self) -> Iterator[Path]:
        yield from sorted((self.root / "objects").glob("*/*.json"))

    def keys(self) -> list[str]:
        """Keys of every complete entry (sidecar present), sorted.

        A sidecar implies a complete payload (writes land payload first),
        so this is the store's shareable inventory — what the remote tier
        pushes and diffs against a peer.
        """
        return [path.stem for path in self._sidecars()]

    def object_paths(self, key: str) -> tuple[Path, Path]:
        """``(payload, sidecar)`` paths of ``key`` in the sharded layout.

        Public for the remote tier (:mod:`repro.store.remote`), which
        moves raw blob bytes without decoding them.
        """
        return self._paths(key)

    # ------------------------------------------------------------------ #
    # Get / put
    # ------------------------------------------------------------------ #
    def _load(self, key: str) -> Any:
        """Verified decode of ``key``; raises ``KeyError`` without
        touching the hit/miss counters (callers layer accounting on top).

        A corrupted entry (hash mismatch, unreadable sidecar, decode
        failure) is quarantined so it is recomputed, not re-read.
        """
        payload_path, sidecar_path = self._paths(key)
        try:
            sidecar = json.loads(sidecar_path.read_text())
            data = payload_path.read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            self._quarantine(key)
            raise KeyError(key) from None
        if sha256(data).hexdigest() != sidecar.get("sha256"):
            self._quarantine(key)
            raise KeyError(key) from None
        try:
            value = codec.decode(data)
        except Exception:
            self._quarantine(key)
            raise KeyError(key) from None
        try:
            os.utime(sidecar_path)  # LRU clock
        except OSError:
            pass  # concurrently evicted; the value is still good
        self.bytes_read += len(data)
        return value

    def get(self, key: str) -> Any:
        """Decoded result for ``key``; raises ``KeyError`` on a miss.

        A corrupted entry (hash mismatch, unreadable sidecar, decode
        failure) is quarantined and reported as a miss.
        """
        try:
            value = self._load(key)
        except KeyError:
            self.misses += 1
            raise
        self.hits += 1
        return value

    def contains(self, key: str) -> bool:
        """Cheap existence probe (sidecar stat, no verification).

        A ``True`` here is advisory — the entry can still fail its hash
        check or vanish under concurrent eviction by the time it is
        read; callers must keep a recompute fallback.
        """
        return self._paths(key)[1].exists()

    def read(self, key: str) -> Any:
        """Like :meth:`get` but outside the hit/miss tally.

        The store-routed runner uses this to materialize results its
        *workers* just wrote: those sessions were computed, so counting
        the read-back as a cache hit would misreport the run.  The read
        still advances the entry's LRU clock (via :meth:`_load`) —
        hot store-routed campaign traces must age like hit traces, or
        they would be evicted first under ``REPRO_CACHE_MAX_MB``.
        """
        return self._load(key)

    def note_routed_write(self, n_bytes: int) -> None:
        """Account payload bytes a worker process wrote on our behalf."""
        self.bytes_written += int(n_bytes)

    def put(self, key: str, value: Any, *, task: Any = None, label: str = "") -> bool:
        """Store a session result; returns ``False`` for uncacheable values."""
        data = codec.encode(value)
        if data is None:
            return False
        payload_path, sidecar_path = self._paths(key)
        payload_path.parent.mkdir(parents=True, exist_ok=True)
        sidecar = {
            "key": key,
            "sha256": sha256(data).hexdigest(),
            "size": len(data),
            "salt": self.salt,
            "created": time.time(),
            "label": label or getattr(task, "label", ""),
        }
        if task is not None:
            sidecar["fn"] = f"{task.fn.__module__}:{task.fn.__qualname__}"
            sidecar["seed"] = task.seed
        self._atomic_write(payload_path, data)
        self._atomic_write(sidecar_path, json.dumps(sidecar, sort_keys=True).encode())
        self.bytes_written += len(data)
        if self.max_bytes is not None:
            self.evict(self.max_bytes)
        return True

    def _atomic_write(self, path: Path, data: bytes) -> None:
        tmp = path.parent / f".{path.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def _quarantine(self, key: str) -> None:
        """Move a corrupted entry aside so it is recomputed, not re-read."""
        for path in self._paths(key):
            try:
                os.replace(path, self.root / "quarantine" / path.name)
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        for sidecar_path in self._sidecars():
            payload_path = sidecar_path.with_suffix(".npz")
            try:
                total += sidecar_path.stat().st_size + payload_path.stat().st_size
            except FileNotFoundError:
                continue
            entries += 1
        quarantined = sum(1 for p in (self.root / "quarantine").glob("*.npz"))
        return StoreStats(root=str(self.root), entries=entries, total_bytes=total,
                          quarantined=quarantined, hits=self.hits, misses=self.misses,
                          bytes_read=self.bytes_read, bytes_written=self.bytes_written)

    def verify(self) -> tuple[int, list[str]]:
        """Re-hash every entry; quarantine mismatches.

        Returns ``(entries_ok, quarantined_keys)``.
        """
        ok = 0
        bad: list[str] = []
        for sidecar_path in list(self._sidecars()):
            key = sidecar_path.stem
            payload_path = sidecar_path.with_suffix(".npz")
            try:
                sidecar = json.loads(sidecar_path.read_text())
                data = payload_path.read_bytes()
                intact = sha256(data).hexdigest() == sidecar.get("sha256")
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                intact = False
            if intact:
                ok += 1
            else:
                self._quarantine(key)
                bad.append(key)
        return ok, bad

    def clear(self) -> int:
        """Remove every entry (and the quarantine); returns entries removed."""
        removed = 0
        for sidecar_path in list(self._sidecars()):
            payload_path = sidecar_path.with_suffix(".npz")
            for path in (payload_path, sidecar_path):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            removed += 1
        for path in (self.root / "quarantine").iterdir():
            try:
                path.unlink()
            except (FileNotFoundError, IsADirectoryError):
                pass
        return removed

    def evict(self, max_bytes: int) -> list[str]:
        """LRU-evict entries until the store fits ``max_bytes``.

        Least-recently-*accessed* first (the sidecar mtime, touched on
        every hit).  Returns the evicted keys.
        """
        entries = []
        total = 0
        for sidecar_path in self._sidecars():
            payload_path = sidecar_path.with_suffix(".npz")
            try:
                stat = sidecar_path.stat()
                size = stat.st_size + payload_path.stat().st_size
            except FileNotFoundError:
                continue
            entries.append((stat.st_mtime, sidecar_path.stem, size))
            total += size
        evicted: list[str] = []
        for _, key, size in sorted(entries):
            if total <= max_bytes:
                break
            payload_path, sidecar_path = self._paths(key)
            for path in (payload_path, sidecar_path):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            total -= size
            evicted.append(key)
        return evicted
