"""Store payload codec: session results <-> columnar npz bytes.

The store holds session *results*, not pickles: a payload is a
deterministic npz blob (see :func:`repro.xcal.io.npz_bytes`) whose
``_meta`` member describes how to rebuild the Python object.  Two
result shapes are supported, covering every session-manifest producer:

- a single :class:`~repro.xcal.records.SlotTrace` (campaign sessions,
  per-operator figure sessions);
- an :class:`~repro.ran.ca.AggregatedResult` (carrier-aggregation runs:
  one prefixed column set per component carrier);
- a :class:`~repro.core.reduce.CampaignSketch` (campaign-level merged
  KPI sketch memoized by the reducing runner: quantile histograms as
  arrays, scalar accumulators as exact JSON in ``_meta``).

``encode`` returns ``None`` for anything else — the memoizing runner
then simply executes such tasks every time instead of caching them.
Pickle is never used on either side, so a corrupted or adversarial
blob can fail decoding but cannot execute code.

Arena-backed traces (rows of a :class:`~repro.xcal.arena.CohortArena`,
including shared-memory segments materialized by the shm transport)
encode through the same path: ``npz_bytes`` copies each column via
``ascontiguousarray``, so the payload is byte-identical to an
owning-trace encoding and never aliases — or pins — the arena's
backing buffer.  That copy is what lets the shm transport unlink a
segment as soon as its misses are written back to the store.
"""

from __future__ import annotations

import numpy as np

from repro.xcal.io import _metadata_pairs, arrays_to_trace, npz_arrays, npz_bytes, trace_to_arrays
from repro.xcal.records import SlotTrace

__all__ = ["CODEC_VERSION", "encode", "decode"]

#: Folded into the store salt: bump when the payload layout changes.
CODEC_VERSION = 1


def encode(value) -> bytes | None:
    """Encode a session result to npz bytes, or ``None`` if uncacheable."""
    from repro.core.reduce import CampaignSketch
    from repro.ran.ca import AggregatedResult

    if isinstance(value, SlotTrace):
        return npz_bytes(trace_to_arrays(value),
                         {"kind": "trace", "trace": _metadata_pairs(value)})
    if isinstance(value, AggregatedResult):
        arrays: dict[str, np.ndarray] = {}
        metas = []
        for index, trace in enumerate(value.per_carrier):
            arrays.update(trace_to_arrays(trace, prefix=f"cc{index}."))
            metas.append(_metadata_pairs(trace))
        return npz_bytes(arrays, {"kind": "ca", "traces": metas})
    if isinstance(value, CampaignSketch):
        arrays, meta = value.to_arrays()
        return npz_bytes(arrays, {"kind": "sketch", "sketch": meta})
    return None


def decode(data: bytes):
    """Rebuild a session result from :func:`encode` output.

    Raises ``ValueError``/``KeyError`` on malformed payloads; the store
    treats any decode failure as corruption (quarantine + miss).
    """
    from repro.core.reduce import CampaignSketch
    from repro.ran.ca import AggregatedResult

    arrays, meta = npz_arrays(data)
    kind = meta.get("kind")
    if kind == "trace":
        return arrays_to_trace(arrays, meta["trace"])
    if kind == "ca":
        traces = [arrays_to_trace(arrays, pairs, prefix=f"cc{index}.")
                  for index, pairs in enumerate(meta["traces"])]
        return AggregatedResult(per_carrier=traces)
    if kind == "sketch":
        return CampaignSketch.from_arrays(arrays, meta["sketch"])
    raise ValueError(f"unknown store payload kind {kind!r}")
