"""Canonical session-task fingerprints.

A cache key must identify a session by *what it computes*: the session
function, its arguments, and its derived seed.  The fingerprint is a
SHA-256 over a canonical-JSON encoding of exactly those parts, salted
with a store schema version so a format or simulator-contract change
invalidates every stale entry at once.

Canonicalization rules:

- dataclasses encode as ``{"__dataclass__": qualified name, fields...}``
  over their *declared* fields (cached derived state is excluded);
- enums encode by qualified class name plus member name;
- dict keys sort, tuples/lists flatten to lists, numpy scalars and
  small numpy arrays collapse to their Python values;
- floats keep their shortest ``repr`` via ``json.dumps``;
- anything else raises :class:`UnfingerprintableTask` — the memoizing
  runner treats such tasks as uncacheable and simply executes them.

The resulting JSON depends only on values, never on ``PYTHONHASHSEED``,
insertion order, or which process computes it, so keys are stable
across workers, reruns and machines.  Execution strategy is likewise
invisible: a session computed inside a cohort tensor pass reuses its
per-session fingerprint (all engines emit identical bytes, and the
``REPRO_ENGINE`` override is an environment knob, not a task field),
so cohort execution required no schema bump and shares store entries
with per-session runs.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

import numpy as np

__all__ = [
    "STORE_SCHEMA_VERSION",
    "UnfingerprintableTask",
    "canonical_json",
    "reduce_key",
    "task_fingerprint",
]

#: Bump to invalidate every existing store entry (format or simulator
#: contract change).  v2: the slot engines evaluate the BLER logistic on
#: whole CQI periods, so decode outcomes ride the platform's *vectorized*
#: ``exp`` — bit-identical to the scalar path everywhere we have checked,
#: but not something v1 entries were ever promised.
STORE_SCHEMA_VERSION = 2

#: Refuse to fingerprint arrays above this size: a huge array in task
#: kwargs signals the task is not manifest-shaped, and hashing it would
#: cost more than a cache hit saves.
_MAX_ARRAY_ELEMENTS = 65536


class UnfingerprintableTask(TypeError):
    """Raised when a task's kwargs contain values with no canonical form."""


def _canonical(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return {"__float__": repr(value)}
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__module__}.{type(value).__qualname__}",
                "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {"__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
                "fields": {f.name: _canonical(getattr(value, f.name))
                           for f in dataclasses.fields(value)}}
    if isinstance(value, np.generic):
        return _canonical(value.item())
    if isinstance(value, np.ndarray):
        if value.size > _MAX_ARRAY_ELEMENTS:
            raise UnfingerprintableTask(
                f"array of {value.size} elements is too large to fingerprint")
        return {"__ndarray__": str(value.dtype), "shape": list(value.shape),
                "data": _canonical(value.ravel().tolist())}
    if isinstance(value, dict):
        items = {}
        for key in value:
            if not isinstance(key, str):
                raise UnfingerprintableTask(f"non-string dict key {key!r}")
            items[key] = _canonical(value[key])
        return dict(sorted(items.items()))
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        encoded = [_canonical(item) for item in value]
        try:
            return sorted(encoded, key=lambda item: json.dumps(item, sort_keys=True))
        except TypeError:
            raise UnfingerprintableTask(f"unsortable set {value!r}") from None
    raise UnfingerprintableTask(
        f"no canonical form for {type(value).__module__}.{type(value).__qualname__}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding of ``value`` (raises
    :class:`UnfingerprintableTask` for values with no canonical form)."""
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def task_fingerprint(task: Any, *, salt: int = STORE_SCHEMA_VERSION) -> str:
    """Hex SHA-256 fingerprint of a :class:`~repro.core.runner.SessionTask`.

    Covers ``(fn qualname, canonical kwargs, seed, salt)`` — and nothing
    else: the display ``label`` is presentation, not identity.
    """
    fn = task.fn
    if getattr(fn, "__module__", None) is None or "<" in getattr(fn, "__qualname__", "<"):
        raise UnfingerprintableTask(f"{fn!r} is not a stable module-level callable")
    payload = {
        "salt": int(salt),
        "fn": f"{fn.__module__}:{fn.__qualname__}",
        "kwargs": _canonical(dict(task.kwargs)),
        "seed": None if task.seed is None else int(task.seed),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def reduce_key(reduction_fingerprint: str, task_keys: list[str], *,
               salt: int = STORE_SCHEMA_VERSION) -> str:
    """Key of a *campaign-level* merged sketch.

    Covers the reduction configuration fingerprint plus every member
    task key in manifest order (order matters: the merged sketch is a
    left-fold), salted like session entries so schema bumps invalidate
    memoized sketches too.
    """
    payload = {
        "salt": int(salt),
        "reduce": reduction_fingerprint,
        "tasks": list(task_keys),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
