#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Drives the experiment registry end to end and prints each artifact's
paper-vs-measured rows.  ``--full`` uses the longer simulation durations
(matching EXPERIMENTS.md); the default quick mode finishes in about a
minute.

Run:  python examples/reproduce_paper.py [--full] [--only fig02 fig11]
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import EXPERIMENT_IDS, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use full (paper-length) simulation durations")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment ids (default: all)")
    args = parser.parse_args()

    ids = args.only or EXPERIMENT_IDS
    unknown = sorted(set(ids) - set(EXPERIMENT_IDS))
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; known: {list(EXPERIMENT_IDS)}")

    total_start = time.time()
    for experiment_id in ids:
        start = time.time()
        result = run_experiment(experiment_id, seed=args.seed, quick=not args.full)
        print(result.render())
        print(f"   [{time.time() - start:.1f} s]\n")
    print(f"regenerated {len(ids)} artifacts in {time.time() - total_start:.1f} s")


if __name__ == "__main__":
    main()
