#!/usr/bin/env python3
"""Mid-band vs mmWave under mobility: the §7 comparison.

Runs the U.S. mid-band CA bundle and the FR2 mmWave bundle under
walking and driving, compares throughput and multi-scale variability,
and streams the scaled-up video ladder over mmWave — showing why the
paper calls mid-band the 5G "sweet spot".

Run:  python examples/mmwave_vs_midband.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.video import Bola, PAPER_LADDER_MMWAVE, StreamingSession, Video
from repro.core.variability import variability_profile
from repro.experiments.fig18_mmwave_variability import SCENARIOS, _midband_run, _mmwave_run

SEED = 2024
DURATION_S = 15.0


def describe(label: str, result) -> None:
    series = result.throughput_mbps(8.0)
    scales, values = variability_profile(series, 8.0, max_scale_ms=1024.0)
    rel = values / max(series.mean(), 1e-9)
    print(f"  {label:10s} mean {series.mean() / 1000:5.2f} Gbps  "
          f"p5 {np.percentile(series, 5) / 1000:5.2f}  "
          f"relative V(8ms..1s): {rel[0]:.3f} -> {rel[-1]:.3f}")


def main() -> None:
    for scenario_name, scenario in SCENARIOS.items():
        print(f"== {scenario_name} ({scenario['speed']:.1f} m/s) ==")
        midband = _midband_run(DURATION_S, scenario, SEED)
        mmwave = _mmwave_run(DURATION_S, scenario, SEED)
        describe("mid-band", midband)
        describe("mmWave", mmwave)
        ratio = mmwave.mean_throughput_mbps / midband.mean_throughput_mbps
        print(f"  mmWave/mid-band throughput ratio: {ratio:.2f} "
              f"(paper: ~2.0 walking, ~1.2 driving)\n")

    # Scaled-up streaming over mmWave (§7 set (b)).
    print("== scaled-up ladder (0.4-2.8 Gbps) over mmWave ==")
    for scenario_name in ("walking", "driving"):
        result = _mmwave_run(60.0, SCENARIOS[scenario_name], SEED + 3)
        capacity = result.throughput_mbps(50.0)
        video = Video(duration_s=50.0, chunk_s=1.0, ladder=PAPER_LADDER_MMWAVE)
        session = StreamingSession(video=video, abr=Bola(video.ladder),
                                   capacity_mbps=capacity, buffer_capacity_s=12.0).run()
        qoe = session.qoe()
        print(f"  {scenario_name:8s} {qoe.row()}")
    print("\npaper: driving degrades the scaled-up stream markedly; the achieved")
    print("bitrate falls to ~80% of the channel's average throughput.")


if __name__ == "__main__":
    main()
