#!/usr/bin/env python3
"""Quickstart: simulate one operator's 5G mid-band downlink and dissect it.

Builds Vodafone Spain's deployment from the paper's Table 2, runs a
10-second full-buffer (iPerf-style) transfer, and prints the KPIs the
paper's analysis revolves around: throughput, MCS/modulation usage,
MIMO layers, BLER, and multi-time-scale variability.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.timeseries import KpiSeries
from repro.core.variability import variability_profile
from repro.operators import get_profile
from repro.ran.simulator import simulate_downlink

DURATION_S = 10.0
SEED = 42


def main() -> None:
    # 1. Pick an operator profile (Tables 2-3 of the paper, pre-encoded).
    profile = get_profile("V_Sp")
    cell = profile.primary_cell
    print(f"operator: {profile.operator} ({profile.country}), carrier {cell.name}")
    print(f"  band {cell.band_name}, {cell.bandwidth_mhz} MHz @ {cell.scs_khz} kHz SCS, "
          f"N_RB={cell.n_rb}, TDD {cell.tdd.pattern}, max modulation {cell.max_modulation.name}")

    # 2. Draw a radio-channel realization from the calibrated environment.
    rng = np.random.default_rng(SEED)
    channel = profile.dl_channel().realize(DURATION_S, mu=cell.mu, rng=rng)
    print(f"  channel: mean SINR {channel.sinr_db.mean():.1f} dB over "
          f"{channel.n_slots} slots ({DURATION_S:.0f} s at {cell.slot_ms} ms slots)")

    # 3. Run the slot-level link simulation (full-buffer DL).
    trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())

    # 4. Dissect the XCAL-style trace like §4 of the paper does.
    print(f"\nPHY DL throughput: {trace.mean_throughput_mbps:7.1f} Mbps "
          f"(paper's Fig. 1 reports 743.0 Mbps for this carrier)")
    print(f"initial BLER:      {100 * trace.bler:7.2f} %  (link adaptation targets ~10%)")
    order_names = {2: "QPSK", 4: "16QAM", 6: "64QAM", 8: "256QAM"}
    print("modulation shares: " + ", ".join(
        f"{order_names[order]} {100 * share:.1f}%"
        for order, share in sorted(trace.modulation_shares().items(), reverse=True)))
    print("MIMO layer shares: " + ", ".join(
        f"{layers}L {100 * share:.1f}%"
        for layers, share in sorted(trace.layer_shares().items(), reverse=True)))

    # 5. Variability across time scales (the §5 metric).
    tput_slots = trace.throughput_mbps(trace.slot_duration_ms)
    scales, values = variability_profile(tput_slots, trace.slot_duration_ms, max_scale_ms=2048.0)
    print("\nscaled variability V(t) of throughput (Mbps):")
    for scale, value in zip(scales[::2], values[::2]):
        print(f"  t = {scale:7.1f} ms  V = {value:8.2f}")

    mcs = KpiSeries.from_trace_column(trace, "mcs_index", bin_ms=60.0)
    print(f"\nMCS at 60 ms bins: mean {mcs.mean:.1f}, V(60ms) {mcs.variability(60.0):.2f}")


if __name__ == "__main__":
    main()
