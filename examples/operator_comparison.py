#!/usr/bin/env python3
"""Cross-operator comparison: the paper's §3-§4 story in one script.

Runs every European and U.S. operator profile through DL and UL
full-buffer transfers plus the user-plane latency model, and prints a
comparison table next to the paper's reported numbers — a compact
re-enactment of Figs. 1, 9, 10 and 11.

Run:  python examples/operator_comparison.py [--duration 20]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import papertargets as targets
from repro.experiments.base import dl_trace, ul_trace
from repro.operators.profiles import ALL_PROFILES, EU_PROFILES, US_PROFILES

SEED = 2024


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="simulated seconds per operator and direction")
    args = parser.parse_args()

    print(f"{'carrier':10s} {'BW':>5s} {'TDD':>11s} {'DL Mbps':>9s} {'(paper)':>9s} "
          f"{'UL Mbps':>9s} {'(paper)':>9s} {'latency ms':>11s} {'4L %':>6s} {'256Q %':>7s}")
    print("-" * 95)

    for key, profile in ALL_PROFILES.items():
        cell = profile.primary_cell
        dl = dl_trace(profile, args.duration, SEED)
        ul = ul_trace(profile, args.duration, SEED + 1)
        latency = profile.latency_model().mean_latency_ms() if cell.tdd else float("nan")
        paper_dl = targets.FIG1_EU_DL_MBPS.get(key)
        if paper_dl is None and key in targets.FIG1_US_DL_GBPS:
            paper_dl = targets.FIG1_US_DL_GBPS[key] * 1000.0  # CA aggregate
        paper_ul = targets.FIG9_EU_UL_MBPS.get(
            key, targets.FIG10_US_UL_MBPS["good"].get(key))
        four_layer = 100 * dl.layer_shares().get(4, 0.0)
        qam256 = 100 * dl.modulation_shares().get(8, 0.0)
        note = " (+CA)" if profile.uses_ca else ""
        print(f"{key:10s} {cell.bandwidth_mhz:4d}M {cell.tdd.pattern if cell.tdd else 'FDD':>11s} "
              f"{dl.mean_throughput_mbps:9.1f} {paper_dl if paper_dl else float('nan'):9.1f} "
              f"{ul.mean_throughput_mbps:9.1f} {paper_ul if paper_ul else float('nan'):9.1f} "
              f"{latency:11.2f} {four_layer:6.1f} {qam256:7.2f}{note}")

    print("\nnotes:")
    print(" - U.S. paper DL numbers are CA aggregates; the single-carrier rows above")
    print("   show the primary component carrier (run fig01 for the CA totals)")
    print(" - UL means are NR-leg only; T-Mobile routes UL onto LTE (see fig10)")
    print(" - latency from the §4.3 model: TDD alignment + processing (+ SR where used)")

    # The headline Spain anomaly (Fig. 2): wider channel, lower throughput.
    v_sp = dl_trace(EU_PROFILES["V_Sp"], args.duration, SEED).filter_cqi(minimum=12)
    o_100 = dl_trace(EU_PROFILES["O_Sp_100"], args.duration, SEED).filter_cqi(minimum=12)
    gap = 1.0 - o_100.mean_throughput_mbps / v_sp.mean_throughput_mbps
    print(f"\nSpain anomaly at CQI>=12: V_Sp 90 MHz {v_sp.mean_throughput_mbps:.0f} Mbps vs "
          f"O_Sp 100 MHz {o_100.mean_throughput_mbps:.0f} Mbps "
          f"({100 * gap:.0f}% gap despite 10 MHz less spectrum)")


if __name__ == "__main__":
    main()
