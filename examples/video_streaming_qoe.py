#!/usr/bin/env python3
"""Video streaming over 5G mid-band: the §6 study end to end.

Simulates a drifting 5G channel with abrupt drop events, streams the
paper's 7-level video ladder over it with three ABR algorithms, and
shows the chunk-length effect (§6.2): 1 s chunks adapt faster than 4 s
chunks and largely eliminate stalls.

Run:  python examples/video_streaming_qoe.py [--duration 180]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.apps.video import (
    Bola,
    DynamicAbr,
    PAPER_LADDER_MIDBAND,
    StreamingSession,
    ThroughputBased,
    Video,
)
from repro.experiments.base import qoe_channel
from repro.operators import get_profile
from repro.ran.simulator import simulate_downlink

SEED = 7


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=180.0)
    parser.add_argument("--operator", default="V_Sp")
    args = parser.parse_args()

    profile = get_profile(args.operator)
    cell = profile.primary_cell
    rng = np.random.default_rng(SEED)

    # A §6-style session channel: slow drift + sporadic deep drops.
    channel = qoe_channel(profile, swing_db=5.0, swing_period_s=45.0,
                          mean_offset_db=1.0, event_rate_hz=0.04,
                          event_depth_db=20.0).realize(args.duration, mu=cell.mu, rng=rng)
    trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
    capacity = trace.throughput_mbps(50.0)
    print(f"channel over {args.duration:.0f} s: mean {capacity.mean():.0f} Mbps, "
          f"min {capacity.min():.0f}, max {capacity.max():.0f}")
    print(f"ladder: {[q.bitrate_mbps for q in PAPER_LADDER_MIDBAND]} Mbps\n")

    # 1. ABR algorithm comparison at the paper's default 4 s chunks.
    print("== ABR comparison (4 s chunks, 12 s buffer) ==")
    video = Video(duration_s=args.duration - 10.0, chunk_s=4.0, ladder=PAPER_LADDER_MIDBAND)
    for abr_cls in (Bola, ThroughputBased, DynamicAbr):
        session = StreamingSession(video=video, abr=abr_cls(video.ladder),
                                   capacity_mbps=capacity, buffer_capacity_s=12.0).run()
        qoe = session.qoe()
        print(f"  {abr_cls.__name__:16s} {qoe.row()}")

    # 2. The §6.2 chunk-length effect with BOLA.
    print("\n== chunk-length effect (BOLA) ==")
    for chunk_s in (8.0, 4.0, 2.0, 1.0):
        video = Video(duration_s=args.duration - 10.0, chunk_s=chunk_s,
                      ladder=PAPER_LADDER_MIDBAND)
        session = StreamingSession(video=video, abr=Bola(video.ladder),
                                   capacity_mbps=capacity, buffer_capacity_s=12.0).run()
        qoe = session.qoe()
        print(f"  chunk {chunk_s:3.0f} s   {qoe.row()}")

    # 3. A per-chunk look at one BOLA session (the Fig. 16 view).
    print("\n== per-chunk dissection (BOLA, 4 s chunks, first 15 chunks) ==")
    video = Video(duration_s=args.duration - 10.0, chunk_s=4.0, ladder=PAPER_LADDER_MIDBAND)
    session = StreamingSession(video=video, abr=Bola(video.ladder),
                               capacity_mbps=capacity, buffer_capacity_s=12.0).run()
    for chunk in session.chunks[:15]:
        stall = f"  STALL {chunk.stall_s:4.1f}s" if chunk.stall_s > 0 else ""
        print(f"  chunk {chunk.index:3d}  q{chunk.level}  "
              f"dl {chunk.download_time_s:5.2f}s  buffer {chunk.buffer_after_s:5.1f}s{stall}")


if __name__ == "__main__":
    main()
