#!/usr/bin/env python3
"""Generate and export a synthetic measurement campaign (§2 / Table 1).

Produces XCAL-style slot-level traces for every operator of the study,
prints Table 1-style statistics, exports the traces as CSV, and then
round-trips one of them through the reader to demonstrate that external
KPI extracts with the same columns flow through the identical pipeline.

Run:  python examples/dataset_generation.py [--out /tmp/campaign]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.xcal.dataset import CampaignSpec, generate_campaign
from repro.xcal.io import read_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("/tmp/repro_campaign"))
    parser.add_argument("--minutes", type=float, default=1.0,
                        help="simulated minutes per operator")
    args = parser.parse_args()

    spec = CampaignSpec(minutes_per_operator=args.minutes, session_s=10.0, seed=2024)
    print("generating campaign (all 11 operator-channels)...")
    campaign = generate_campaign(spec=spec)
    for row in campaign.summary_rows():
        print("  " + row)

    paths = campaign.export_csv(args.out)
    print(f"\nexported {len(paths)} traces to {args.out}")

    # Round-trip one trace through the CSV reader and re-derive its KPIs.
    sample = paths[0]
    trace = read_csv(sample)
    print(f"\nre-loaded {sample.name}:")
    print(f"  operator {trace.metadata.operator} ({trace.metadata.country}), "
          f"{trace.metadata.direction}, {trace.metadata.bandwidth_mhz:.0f} MHz")
    print(f"  {len(trace)} slots, mean throughput {trace.mean_throughput_mbps:.1f} Mbps, "
          f"BLER {100 * trace.bler:.1f}%")
    print(f"  layer shares: { {k: round(v, 3) for k, v in trace.layer_shares().items()} }")


if __name__ == "__main__":
    main()
