"""One-off calibration: jointly fit per-operator mean SINR, rank bias and
UL offsets to the paper's Fig. 1 / Fig. 2 / Fig. 5 / Fig. 6 / Fig. 9 /
Fig. 10 targets and print profile constants to bake into
``repro/operators/profiles.py``.  Run from the repo root:

    python scripts/calibrate_profiles.py
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import papertargets as targets
from repro.operators.profiles import ALL_PROFILES
from repro.ran.simulator import simulate_downlink, simulate_uplink

DURATION_S = 15.0
SEED = 3

DL_TARGETS = dict(targets.FIG1_EU_DL_MBPS)
DL_TARGETS["S_Fr"] = 590.0   # not in Fig. 1; plausible mid-pack value
DL_TARGETS["V_Ge"] = 650.0   # not in Fig. 1; plausible mid-pack value
DL_TARGETS["Tmb_US"] = 790.0  # primary-CC share of the 1.2 Gbps aggregate
DL_TARGETS["Vzw_US"] = 560.0  # primary-CC share of the 1.3 Gbps aggregate
DL_TARGETS["Att_US"] = 400.0  # single carrier

RANK4_TARGETS = {  # Fig. 6 where given, else plausible share
    "V_Sp": 0.871, "O_Sp_90": 0.838, "O_Sp_100": 0.138,
    "V_It": 0.97, "O_Fr": 0.75, "S_Fr": 0.75, "T_Ge": 0.70, "V_Ge": 0.85,
    "Tmb_US": 0.85, "Vzw_US": 0.85, "Att_US": 0.85,
}

UL_TARGETS = dict(targets.FIG9_EU_UL_MBPS)
UL_TARGETS.update({k: v for k, v in targets.FIG10_US_UL_MBPS["good"].items() if k != "LTE_US"})


def run_dl(profile):
    rng = np.random.default_rng(SEED)
    cell = profile.primary_cell
    ch = profile.dl_channel().realize(DURATION_S, mu=cell.mu, rng=rng)
    return simulate_downlink(cell, ch, rng=rng, params=profile.sim_params())


def run_ul(profile):
    rng = np.random.default_rng(SEED + 1)
    cell = profile.primary_cell
    ch = profile.ul_channel().realize(DURATION_S, mu=cell.mu, rng=rng)
    return simulate_uplink(cell, ch, rng=rng, params=profile.sim_params(),
                           max_layers=profile.ul_max_layers)


def bisect(update, evaluate, target, low, high, iters=10, tol=0.0):
    f_low = evaluate(update(low)) - target
    if f_low > 0:
        return low
    if evaluate(update(high)) - target < 0:
        return high
    mid = (low + high) / 2
    for _ in range(iters):
        mid = (low + high) / 2
        err = evaluate(update(mid)) - target
        if tol and abs(err) < tol:
            break
        if err > 0:
            high = mid
        else:
            low = mid
    return mid


def main() -> None:
    for key, dl_target in DL_TARGETS.items():
        profile = ALL_PROFILES[key]
        rank_target = RANK4_TARGETS[key]
        # Alternate: fit mean SINR for throughput, then bias for rank share.
        for _ in range(3):
            mean = bisect(
                lambda m: replace(profile, mean_sinr_db=m),
                lambda pr: run_dl(pr).mean_throughput_mbps,
                dl_target, profile.mean_sinr_db - 6, profile.mean_sinr_db + 6, tol=4.0,
            )
            profile = replace(profile, mean_sinr_db=round(mean, 2))
            bias = bisect(
                lambda b: replace(profile, rank_bias_db=b),
                lambda pr: -run_dl(pr).layer_shares().get(4, 0.0),
                -rank_target, -4.0, 14.0, tol=0.01,
            )
            profile = replace(profile, rank_bias_db=round(bias, 2))
        ul_target = UL_TARGETS.get(key)
        if ul_target is not None:
            ul = bisect(
                lambda u: replace(profile, ul_sinr_offset_db=u),
                lambda pr: run_ul(pr).mean_throughput_mbps,
                ul_target, -30.0, 2.0, tol=0.8,
            )
            profile = replace(profile, ul_sinr_offset_db=round(ul, 2))
        trace = run_dl(profile)
        ul_tput = run_ul(profile).mean_throughput_mbps if ul_target else float("nan")
        print(
            f"{key:10s} mean_sinr_db={profile.mean_sinr_db:6.2f}  "
            f"rank_bias_db={profile.rank_bias_db:6.2f}  "
            f"ul_sinr_offset_db={profile.ul_sinr_offset_db:7.2f}  |  "
            f"dl={trace.mean_throughput_mbps:7.1f} (tgt {dl_target:7.1f})  "
            f"4L={100 * trace.layer_shares().get(4, 0):5.1f}% (tgt {100 * rank_target:5.1f})  "
            f"256Q={100 * trace.modulation_shares().get(8, 0):5.2f}%  "
            f"ul={ul_tput:6.1f} (tgt {UL_TARGETS.get(key, float('nan'))})"
        )


if __name__ == "__main__":
    main()
