"""Extension bench — end-to-end RTT vs server placement."""


def test_ext_e2e_latency(run_figure):
    result = run_figure("ext_e2e")
    data = result.data
    for key in ("V_Ge", "V_It"):
        row = data[key]
        # Deeper placement tiers cost strictly more RTT.
        assert row["wavelength"] < row["edge"] < row["metro"] < row["regional"]
        # The TDD pattern's latency signal survives at the edge ...
        assert data["V_It"]["edge"] > 2.0 * data["V_Ge"]["edge"] * 0.5
    # ... and the Fig. 11 ordering holds at every placement tier.
    for tier in ("wavelength", "edge", "metro", "regional"):
        assert data["V_It"][tier] > data["V_Ge"][tier]
