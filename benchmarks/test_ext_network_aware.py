"""Extension bench — 5G-network-aware ABR (the §8 proposal).

Network awareness should cut stall time relative to plain BOLA on
unstable channels, at a bounded bitrate cost.
"""


def test_ext_network_aware(run_figure):
    result = run_figure("ext_aware")
    data = result.data
    assert data["aware"]["stall_pct"] <= data["bola"]["stall_pct"]
    assert data["stall_reduction"] > 0.0
    # The conservatism costs some bitrate, but bounded.
    assert data["aware"]["norm_bitrate"] > 0.8 * data["bola"]["norm_bitrate"]
