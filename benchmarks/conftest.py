"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper through the
experiment harness and asserts its shape-level findings.  Experiments
are stochastic simulations, not micro-kernels, so every benchmark runs
pedantically (one round) and reports wall time per artifact.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment

SEED = 2024


@pytest.fixture
def run_figure(benchmark):
    """Benchmark one experiment and return its result."""

    def runner(experiment_id: str, quick: bool = True):
        return benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"seed": SEED, "quick": quick},
            rounds=1,
            iterations=1,
        )

    return runner
