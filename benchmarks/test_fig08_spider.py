"""Bench F8 — Fig. 8 DL-throughput factor interplay."""


def test_fig08_spider(run_figure):
    result = run_figure("fig08")
    data = result.data
    # The spider shape: widest channel leads on REs yet trails on
    # modulation, layers, and throughput.
    assert data["O_Sp_100"]["mean_re"] > data["V_Sp"]["mean_re"]
    assert data["O_Sp_100"]["mean_modulation_order"] <= data["V_Sp"]["mean_modulation_order"]
    assert data["O_Sp_100"]["mean_layers"] < data["V_Sp"]["mean_layers"]
    assert data["O_Sp_100"]["tput_mbps"] < data["V_Sp"]["tput_mbps"]
