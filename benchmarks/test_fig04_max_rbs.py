"""Bench F4 — Fig. 4 maximum RBs allocated per operator."""


def test_fig04_max_rbs(run_figure):
    result = run_figure("fig04")
    for key, row in result.data.items():
        assert row["utilization"] > 0.9, key
        assert row["max_allocated"] <= row["configured_n_rb"], key
