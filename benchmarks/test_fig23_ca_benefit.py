"""Bench F23 — Fig. 23 T-Mobile carrier-aggregation benefit."""


def test_fig23_ca_benefit(run_figure):
    result = run_figure("fig23")
    means = [row["mean_gbps"] for row in result.data.values()]
    assert means == sorted(means)     # each added CC helps
    assert means[-1] > 1.0            # paper: mean up to ~1.3 Gbps
    peaks = [row["peak_gbps"] for row in result.data.values()]
    assert peaks[-1] > means[-1]
