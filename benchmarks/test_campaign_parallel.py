"""Campaign runner — serial vs process-parallel wall time.

The campaign expands into a manifest of independent, seed-carrying
session tasks (``repro.core.runner``), so a process pool should scale
near-linearly with cores.  Wall times for ``jobs=1`` and ``jobs=4`` are
recorded unconditionally; the >=2x speedup assertion only runs on
machines that actually expose >=4 usable cores (single-core CI
containers cannot win from a pool, only pay its overhead), while the
bit-identical-results invariant is asserted everywhere.
"""

import os
import time

from repro.operators.profiles import EU_PROFILES
from repro.xcal.dataset import CampaignSpec, generate_campaign

PROFILE_KEYS = ("V_Sp", "O_Sp_100", "T_Ge", "V_Ge")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _flatten(campaign) -> list[tuple]:
    out = []
    for kind, collection in (("dl", campaign.dl_traces), ("ul", campaign.ul_traces)):
        for key in sorted(collection):
            for i, trace in enumerate(collection[key]):
                out.append((key, kind, i, trace.metadata.seed, int(trace.total_bits)))
    return out


def test_campaign_parallel_speedup(benchmark):
    profiles = {k: EU_PROFILES[k] for k in PROFILE_KEYS}
    spec = CampaignSpec(minutes_per_operator=0.5, session_s=5.0, seed=2024)

    def measure():
        t0 = time.perf_counter()
        serial = generate_campaign(profiles, spec, jobs=1)
        t1 = time.perf_counter()
        parallel = generate_campaign(profiles, spec, jobs=4)
        t2 = time.perf_counter()
        return serial, parallel, t1 - t0, t2 - t1

    serial, parallel, serial_s, parallel_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["usable_cores"] = _usable_cores()
    benchmark.extra_info["speedup"] = round(serial_s / max(parallel_s, 1e-9), 2)

    # Bit-identical results for any worker count, on any machine.
    assert _flatten(serial) == _flatten(parallel)

    if _usable_cores() >= 4:
        assert serial_s / parallel_s >= 2.0
