"""Bench SE — slot-engine throughput, vectorized vs reference.

Unlike the figure benchmarks, these time the slot engines directly on
the ``repro bench`` workloads (the Fig. 1 V_Sp carrier): one trace per
engine so the suite's timing table shows the vectorized/reference gap
per workload, plus a summary run through :func:`repro.core.bench.measure`
that asserts the fast path actually is the fast path.  Throughput
tracking across PRs lives in ``repro bench`` / ``BENCH_slot_engine.json``;
these keep the same numbers visible inside the pytest-benchmark suite.
"""

import pytest

from repro.core import bench

DURATION_S = 2.0
SEED = 2024


@pytest.mark.parametrize("engine", ["vectorized", "reference"])
def test_single_ue_trace(benchmark, engine):
    trace = benchmark.pedantic(
        bench.single_ue_trace, args=(engine, DURATION_S, SEED),
        rounds=1, iterations=1)
    benchmark.extra_info["n_slots"] = len(trace)
    assert trace.total_bits > 0


@pytest.mark.parametrize("engine", ["vectorized", "reference"])
def test_multi_ue_traces(benchmark, engine):
    traces = benchmark.pedantic(
        bench.multi_ue_traces, args=(engine, DURATION_S), kwargs={"seed": SEED},
        rounds=1, iterations=1)
    benchmark.extra_info["n_slots"] = len(traces[0])
    benchmark.extra_info["n_ues"] = len(traces)
    assert all(t.total_bits > 0 for t in traces)


def test_vectorized_beats_reference(benchmark):
    """The quick benchmark matrix, with the speedup claim asserted."""
    report = benchmark.pedantic(
        bench.measure, kwargs={"quick": True, "seed": SEED},
        rounds=1, iterations=1)
    for name, data in report["workloads"].items():
        vec = data["vectorized"]["warm_slots_per_s"]
        ref = data["reference"]["warm_slots_per_s"]
        benchmark.extra_info[f"{name}_vectorized_warm"] = vec
        benchmark.extra_info[f"{name}_reference_warm"] = ref
        benchmark.extra_info[f"{name}_speedup"] = round(vec / ref, 2)
        # Warm best-of throughput: the segment-batched path must beat the
        # scalar oracle on its home workload or the default is wrong.
        assert vec > ref, f"{name}: vectorized {vec:,.0f} <= reference {ref:,.0f}"
