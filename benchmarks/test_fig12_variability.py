"""Bench F12 — Fig. 12 scaled variability across time scales."""

import numpy as np


def test_fig12_variability(run_figure):
    result = run_figure("fig12")
    data = result.data
    order = data["ordering_128ms"]
    assert order[0] == "O_Sp_100" and order[-1] == "V_It"
    # V(t) stabilizes at coarse scales: the 2 s value sits below the peak.
    for key in ("O_Sp_100", "V_Sp", "V_It"):
        tput = data[key]["throughput"]["v"]
        assert tput[-1] < tput.max()
        # MIMO variability an order of magnitude below MCS variability.
        assert np.median(data[key]["mimo"]["v"]) < np.median(data[key]["mcs"]["v"])
