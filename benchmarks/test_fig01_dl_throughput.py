"""Bench F1 — Fig. 1 DL throughput, EU and U.S."""

import pytest

from repro import papertargets as targets


def test_fig01_dl_throughput(run_figure):
    result = run_figure("fig01")
    eu = result.data["eu"]
    for key, paper in targets.FIG1_EU_DL_MBPS.items():
        assert eu[key] == pytest.approx(paper, rel=0.20), key
    # Orderings the figure shows.
    assert eu["V_It"] == max(eu.values())
    assert eu["V_Sp"] > eu["O_Sp_100"]
    us = result.data["us"]
    assert us["Vzw_US"] > 1.0 and us["Tmb_US"] > 1.0
    assert us["Att_US"] < 0.6
