"""Bench F9 — Fig. 9 EU PHY UL throughput with CQI >= 12."""

import pytest

from repro import papertargets as targets


def test_fig09_ul_eu(run_figure):
    result = run_figure("fig09")
    data = result.data
    for key, paper in targets.FIG9_EU_UL_MBPS.items():
        assert data[key]["ul_mbps"] == pytest.approx(paper, rel=0.30), key
        assert data[key]["ul_mbps"] < 120.0
    assert abs(data["bandwidth_correlation"]) < 0.6
