"""Ablation — scheduler policy under multi-UE contention.

Round-robin splits RBs evenly; proportional-fair follows the per-UE
channel.  With symmetric UEs both degenerate to the Fig. 14 halving;
with one degraded UE, PF shifts resources toward the stronger channel
and lifts cell throughput.
"""

import numpy as np
import pytest

from repro.channel.model import SyntheticChannel
from repro.operators.profiles import EU_PROFILES
from repro.ran.scheduler import ProportionalFairScheduler, RoundRobinScheduler
from repro.ran.simulator import simulate_downlink_multi


def _run(scheduler_cls, asymmetric: bool) -> dict:
    profile = EU_PROFILES["V_Sp"]
    cell = profile.primary_cell
    rng = np.random.default_rng(5)
    means = (24.0, 10.0) if asymmetric else (24.0, 24.0)
    channels = [
        SyntheticChannel(mean_sinr_db=m).realize(4.0, mu=cell.mu,
                                                 rng=np.random.default_rng(3 + i))
        for i, m in enumerate(means)
    ]
    traces = simulate_downlink_multi(cell, channels, scheduler_cls(), rng=rng,
                                     params=profile.sim_params())
    return {
        "per_ue": [t.mean_throughput_mbps for t in traces],
        "cell": sum(t.mean_throughput_mbps for t in traces),
    }


def test_ablation_scheduler(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "rr_symmetric": _run(RoundRobinScheduler, False),
            "pf_symmetric": _run(ProportionalFairScheduler, False),
            "rr_asymmetric": _run(RoundRobinScheduler, True),
            "pf_asymmetric": _run(ProportionalFairScheduler, True),
        },
        rounds=1, iterations=1,
    )
    # Symmetric UEs: both policies split roughly evenly.
    for key in ("rr_symmetric", "pf_symmetric"):
        a, b = results[key]["per_ue"]
        assert a == pytest.approx(b, rel=0.25), key
    # Asymmetric UEs: PF yields at least RR's cell throughput.
    assert results["pf_asymmetric"]["cell"] >= 0.95 * results["rr_asymmetric"]["cell"]
