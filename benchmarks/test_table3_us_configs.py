"""Bench T3 — regenerate Table 3 (U.S. network configs)."""


def test_table3_us_configs(run_figure):
    result = run_figure("table3")
    data = result.data
    assert [c["n_rb"] for c in data["Tmb_US"]] == [273, 106, 51, 11]
    assert [c["duplexing"] for c in data["Tmb_US"]] == ["TDD", "TDD", "FDD", "FDD"]
    assert data["Att_US"][0]["bandwidth_mhz"] == 40
    assert data["Vzw_US"][0]["bandwidth_mhz"] == 60
    assert data["Tmb_US"][0]["ca"] and data["Vzw_US"][0]["ca"]
    assert not data["Att_US"][0]["ca"]
