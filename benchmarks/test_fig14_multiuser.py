"""Bench F14 — Fig. 14 multi-location / multi-user study."""

import pytest


def test_fig14_multiuser(run_figure):
    result = run_figure("fig14")
    data = result.data
    assert data["tput_ratio"] == pytest.approx(0.5, abs=0.15)
    assert data["rb_ratio"] == pytest.approx(0.5, abs=0.1)
    # Channel variability is a property of the location, not the load.
    for label in ("A", "B"):
        seq = data["sequential"][label]["v_mcs"]
        sim = data["simultaneous"][label]["v_mcs"]
        assert sim == pytest.approx(seq, abs=max(1.0, 0.8 * seq))
