"""Bench T1 — regenerate the Table 1 campaign statistics."""


def test_table1_campaign(run_figure):
    result = run_figure("table1")
    data = result.data
    assert data["minutes"] > 0
    assert len(data["operators"]) == 11
    assert set(data["countries"]) == {"Spain", "France", "Italy", "Germany", "USA"}
