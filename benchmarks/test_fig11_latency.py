"""Bench F11 — Fig. 11 PHY user-plane latency."""

import pytest

from repro import papertargets as targets


def test_fig11_latency(run_figure):
    result = run_figure("fig11")
    data = result.data
    for key, paper in targets.FIG11_LATENCY_MS["bler0"].items():
        assert data[key]["bler0_ms"] == pytest.approx(paper, rel=0.25), key
    for key, paper in targets.FIG11_LATENCY_MS["bler_pos"].items():
        assert data[key]["bler_pos_ms"] == pytest.approx(paper, rel=0.25), key
    # Frame structure, not bandwidth, drives the outcome.
    assert data["V_It"]["bler0_ms"] > 2 * data["V_Ge"]["bler0_ms"]
