"""Bench F5 — Fig. 5 modulation-scheme shares (Spain)."""


def test_fig05_mcs_ratios(run_figure):
    result = run_figure("fig05")
    data = result.data
    # 64QAM ceiling on the 100 MHz carrier: zero 256QAM use.
    assert data["O_Sp_100"].get("256QAM", 0.0) == 0.0
    for key in ("V_Sp", "O_Sp_90"):
        assert 1.0 < data[key].get("256QAM", 0.0) < 20.0   # paper ~8%
        assert data[key].get("64QAM", 0.0) > 60.0          # paper ~91%
