"""Ablation — outer-loop link adaptation on/off.

With OLLA off, the gNB trusts the (optimistic) CQI reports blindly:
the realized BLER blows far past the 10% target and the delivered
throughput drops despite the more aggressive MCS choices.
"""

import numpy as np
import pytest

from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink


def _run(olla_enabled: bool) -> dict:
    profile = EU_PROFILES["V_Sp"]
    cell = profile.primary_cell
    rng = np.random.default_rng(77)
    channel = profile.dl_channel().realize(8.0, mu=cell.mu, rng=rng)
    trace = simulate_downlink(cell, channel, rng=rng,
                              params=profile.sim_params(olla_enabled=olla_enabled))
    return {"tput": trace.mean_throughput_mbps, "bler": trace.bler}


def test_ablation_olla(benchmark):
    results = benchmark.pedantic(
        lambda: {"on": _run(True), "off": _run(False)},
        rounds=1, iterations=1,
    )
    assert results["on"]["bler"] == pytest.approx(0.10, abs=0.04)
    assert results["off"]["bler"] > 0.25          # blind CQI trust fails
    assert results["on"]["tput"] > results["off"]["tput"]
