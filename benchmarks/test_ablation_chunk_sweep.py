"""Ablation — chunk-length sweep beyond the paper's {1 s, 4 s}.

Extends §6.2: sweeping 0.5-8 s chunks over the same capacity trace
shows the stall percentage growing with chunk length (the commitment
cost of each ABR decision), with diminishing bitrate differences.
"""

import numpy as np

from repro.apps.video import Bola, PAPER_LADDER_MIDBAND, StreamingSession, Video
from repro.experiments.base import qoe_channel
from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink

CHUNKS_S = (0.5, 1.0, 2.0, 4.0, 8.0)


def _sweep() -> dict:
    profile = EU_PROFILES["V_Ge"]
    cell = profile.primary_cell
    duration = 90.0
    rng = np.random.default_rng(31)
    channel = qoe_channel(profile, swing_db=5.0, swing_period_s=40.0, mean_offset_db=1.0,
                          event_rate_hz=0.05, event_depth_db=20.0).realize(
        duration, mu=cell.mu, rng=rng)
    trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
    capacity = trace.throughput_mbps(50.0)
    out = {}
    for chunk_s in CHUNKS_S:
        video = Video(duration_s=duration - 10.0, chunk_s=chunk_s, ladder=PAPER_LADDER_MIDBAND)
        session = StreamingSession(video=video, abr=Bola(video.ladder),
                                   capacity_mbps=capacity, buffer_capacity_s=12.0).run()
        qoe = session.qoe()
        out[chunk_s] = {"stall_pct": qoe.stall_percentage,
                        "norm_bitrate": qoe.normalized_bitrate}
    return out


def test_ablation_chunk_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    stalls = [results[c]["stall_pct"] for c in CHUNKS_S]
    # Longer chunks never stall less than the shortest chunks, and the
    # longest chunk stalls strictly more than the shortest.
    assert stalls[-1] >= stalls[0]
    assert max(stalls) == max(stalls[-2:])  # worst case among long chunks
    for c in CHUNKS_S:
        assert 0.0 <= results[c]["norm_bitrate"] <= 1.0
