"""Trace store — cold vs warm wall time, byte-identical exports.

A warm content-addressed store serves every session of a repeat run
from disk instead of re-simulating it, so the warm pass should be a
large multiple faster than the cold pass (the floor asserted here is
5x; real ratios are much higher).  Byte-identity of the exported
artifacts is asserted unconditionally: memoization must be invisible
in the output.
"""

import time

from repro.experiments import run_experiment
from repro.operators.profiles import EU_PROFILES
from repro.store import TraceStore
from repro.xcal.dataset import CampaignSpec, generate_campaign

SPEEDUP_FLOOR = 5.0


def _export_bytes(campaign, directory, fmt="npz") -> dict[str, bytes]:
    return {p.name: p.read_bytes() for p in campaign.export(directory, format=fmt)}


def test_campaign_warm_store_speedup(benchmark, tmp_path):
    profiles = {k: EU_PROFILES[k] for k in ("V_Sp", "O_Sp_100", "T_Ge", "V_Ge")}
    spec = CampaignSpec(minutes_per_operator=0.5, session_s=5.0, seed=2024)
    root = tmp_path / "cache"

    def measure():
        t0 = time.perf_counter()
        cold = generate_campaign(profiles, spec, store=TraceStore(root))
        t1 = time.perf_counter()
        # Two warm passes, best-of: the first pays one-off costs (page
        # cache, lazy imports) that are not the steady-state read path.
        warm_store = TraceStore(root)
        warm = generate_campaign(profiles, spec, store=warm_store)
        t2 = time.perf_counter()
        generate_campaign(profiles, spec, store=TraceStore(root))
        t3 = time.perf_counter()
        return cold, warm, warm_store, t1 - t0, min(t2 - t1, t3 - t2)

    cold, warm, warm_store, cold_s, warm_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["speedup"] = round(cold_s / max(warm_s, 1e-9), 2)
    benchmark.extra_info["entries"] = warm_store.stats().entries

    assert warm_store.misses == 0 and warm_store.hits > 0
    for fmt in ("csv", "npz"):
        assert _export_bytes(cold, tmp_path / f"cold-{fmt}", fmt) == \
            _export_bytes(warm, tmp_path / f"warm-{fmt}", fmt)
    assert cold_s / warm_s >= SPEEDUP_FLOOR


def test_experiment_warm_store_speedup(benchmark, tmp_path):
    # A session-manifest figure run end-to-end through run_experiment.
    root = tmp_path / "cache"

    def measure():
        t0 = time.perf_counter()
        cold = run_experiment("fig12", quick=True, store=TraceStore(root))
        t1 = time.perf_counter()
        warm_store = TraceStore(root)
        warm = run_experiment("fig12", quick=True, store=warm_store)
        t2 = time.perf_counter()
        run_experiment("fig12", quick=True, store=TraceStore(root))
        t3 = time.perf_counter()
        return cold, warm, warm_store, t1 - t0, min(t2 - t1, t3 - t2)

    cold, warm, warm_store, cold_s, warm_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)

    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["speedup"] = round(cold_s / max(warm_s, 1e-9), 2)

    assert warm_store.misses == 0 and warm_store.hits > 0
    assert cold.render() == warm.render()
    assert cold_s / warm_s >= SPEEDUP_FLOOR
