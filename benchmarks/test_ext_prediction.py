"""Extension bench — PHY-feature throughput prediction.

The ridge-over-persistence model must beat the persistence baseline on
a held-out session using only modem-visible PHY KPIs.
"""


def test_ext_prediction(run_figure):
    result = run_figure("ext_predict")
    data = result.data
    assert data["improvement"] > 0.05       # PHY features carry real signal
    assert data["model_mae"] < data["baseline_mae"]
    # PHY features (not just throughput history) drive the residual model.
    importance = data["importance"]
    phy_weight = importance["mcs_mean"] + importance["cqi_mean"] + importance["layers_mean"]
    assert phy_weight > 0.0
