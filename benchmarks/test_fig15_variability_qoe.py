"""Bench F15 — Fig. 15 channel variability implications on QoE."""


def test_fig15_variability_qoe(run_figure):
    result = run_figure("fig15")
    data = result.data
    assert data["corr_bitrate"] > 0.5   # tput -> bitrate
    assert data["corr_stall"] > 0.0     # instability -> stalls
    assert len(data["points"]) == 6
