"""Bench F16 — Fig. 16 BOLA session dissection over V_Sp."""


def test_fig16_streaming_trace(run_figure):
    result = run_figure("fig16")
    qoe = result.data["qoe"]
    assert 3.0 <= qoe.mean_quality_level <= 6.5   # paper 5.41
    assert qoe.stall_percentage < 30.0            # paper 9.96%
    assert result.data["tput_60ms"].min() < 0.3 * result.data["tput_60ms"].mean()
