"""Bench F18 — Fig. 18 mid-band vs mmWave under mobility."""


def test_fig18_mmwave_variability(run_figure):
    result = run_figure("fig18")
    data = result.data
    for scenario in ("walking", "driving"):
        assert data[scenario]["rv_mmwave"] > data[scenario]["rv_midband"]
        assert data[scenario]["stability_gain"] > 0.0
    walking_gap = data["walking"]["mmwave_gbps"] / data["walking"]["midband_gbps"]
    driving_gap = data["driving"]["mmwave_gbps"] / data["driving"]["midband_gbps"]
    assert driving_gap < walking_gap  # the gap narrows while driving
