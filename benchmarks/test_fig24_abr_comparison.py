"""Bench F24 — Fig. 24 BOLA vs throughput-based vs dynamic ABR."""


def test_fig24_abr_comparison(run_figure):
    result = run_figure("fig24")
    assert result.data["best"] == "Bola"
    bola = result.data["Bola"]
    for name in ("ThroughputBased", "DynamicAbr"):
        assert bola["score"] >= result.data[name]["score"]
