"""Bench F3 — Fig. 3 RE-allocation CDFs (Spain)."""


def test_fig03_re_cdf(run_figure):
    result = run_figure("fig03")
    data = result.data
    assert data["O_Sp_100"]["mean_re"] > data["O_Sp_90"]["mean_re"]
    assert data["O_Sp_100"]["mean_re"] > data["V_Sp"]["mean_re"]
    # CDFs spread across allocations (not a point mass).
    for key in ("O_Sp_100", "V_Sp"):
        quantiles = data[key]["quantiles"]
        assert quantiles[90] > quantiles[10]
