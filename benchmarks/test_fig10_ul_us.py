"""Bench F10 — Fig. 10 U.S. UL throughput and the LTE leg."""

import pytest

from repro import papertargets as targets


def test_fig10_ul_us(run_figure):
    result = run_figure("fig10")
    data = result.data
    for key, paper in targets.FIG10_US_UL_MBPS["good"].items():
        assert data["good"][key] == pytest.approx(paper, rel=0.30), key
    # The NSA punchline in both regimes.
    for condition in ("good", "poor"):
        assert data[condition]["LTE_US"] > data[condition]["Tmb_US"]
    assert data["poor"]["Att_US"] < 6.0   # near-collapse (paper 0.3)
