"""Ablation — TDD frame-structure sweep.

The paper defers a full TDD study to future work but shows (§4.2/§4.3)
that the pattern sets the DL/UL split and the user-plane latency.  This
bench sweeps four patterns on an otherwise identical deployment and
regenerates both trends: DL and UL throughput track the symbol
fractions, and latency tracks the UL-opportunity spacing.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.latency import UserPlaneLatencyModel
from repro.nr.tdd import TddPattern
from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink, simulate_uplink

PATTERNS = ("DDDSU", "DDSU", "DDDSUU", "DDDDDDDSUU")


def _run_pattern(pattern_str: str) -> dict:
    profile = EU_PROFILES["V_Sp"]
    pattern = TddPattern.from_string(pattern_str)
    cell = replace(profile.primary_cell, tdd=pattern)
    rng = np.random.default_rng(11)
    dl_channel = profile.dl_channel().realize(6.0, mu=cell.mu, rng=rng)
    ul_channel = profile.ul_channel().realize(6.0, mu=cell.mu, rng=rng)
    dl = simulate_downlink(cell, dl_channel, rng=rng, params=profile.sim_params())
    ul = simulate_uplink(cell, ul_channel, rng=rng, params=profile.sim_params())
    latency = UserPlaneLatencyModel(pattern).mean_latency_ms()
    return {
        "dl": dl.mean_throughput_mbps,
        "ul": ul.mean_throughput_mbps,
        "latency_ms": latency,
        "dl_fraction": pattern.dl_symbol_fraction,
        "ul_fraction": pattern.ul_symbol_fraction,
    }


def test_ablation_tdd(benchmark):
    results = benchmark.pedantic(
        lambda: {p: _run_pattern(p) for p in PATTERNS},
        rounds=1, iterations=1,
    )
    # DL throughput tracks the DL symbol fraction across patterns.
    ordered = sorted(PATTERNS, key=lambda p: results[p]["dl_fraction"])
    dl_values = [results[p]["dl"] for p in ordered]
    assert dl_values == sorted(dl_values)
    # UL-heavy patterns pay in DL, gain in UL.
    assert results["DDSU"]["ul"] > results["DDDDDDDSUU"]["ul"]
    assert results["DDDDDDDSUU"]["dl"] > results["DDSU"]["dl"]
    # Sparse UL patterns have the worst latency (§4.3).
    assert results["DDDDDDDSUU"]["latency_ms"] == max(
        results[p]["latency_ms"] for p in PATTERNS)
