"""Bench F13 — Fig. 13 time-series dissection of V_Sp at 60 ms."""


def test_fig13_timeseries(run_figure):
    result = run_figure("fig13")
    data = result.data
    assert data["corr_mcs"] > 0.5
    assert data["corr_mimo"] > 0.5
    assert data["rb_cv"] < 0.5 * data["mcs_cv"]
