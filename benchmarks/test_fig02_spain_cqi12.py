"""Bench F2 — Fig. 2 Spain DL throughput with CQI >= 12."""

import pytest

from repro import papertargets as targets


def test_fig02_spain_cqi12(run_figure):
    result = run_figure("fig02")
    data = result.data
    for key, paper in targets.FIG2_SPAIN_CQI12_MBPS.items():
        assert data[key]["cqi12_mbps"] == pytest.approx(paper, rel=0.25), key
    assert data["V_Sp"]["cqi12_mbps"] > data["O_Sp_100"]["cqi12_mbps"]
    assert data["O_Sp_90"]["cqi12_mbps"] > data["O_Sp_100"]["cqi12_mbps"]
