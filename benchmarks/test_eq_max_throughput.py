"""Bench EQ — §3.2 TS 38.306 maximum-throughput formula."""

import pytest


def test_eq_max_throughput(run_figure):
    result = run_figure("eq32")
    data = result.data
    assert data["V_Sp_90MHz"]["two_layer_no_oh"] == pytest.approx(1213.44, rel=0.01)
    assert data["O_Sp_100MHz"]["two_layer_no_oh"] == pytest.approx(1352.12, rel=0.01)
    assert data["ratio"] == pytest.approx(273 / 245, rel=1e-4)
    # Measured means stay below the TDD-adjusted ceilings.
    assert data["operators"]["V_Sp"]["primary_tdd_adjusted_mbps"] > 743.0
