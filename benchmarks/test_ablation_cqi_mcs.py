"""Ablation — vendor CQI->MCS mapping aggressiveness.

3GPP leaves the CQI->MCS mapping to vendors (§3.1); this bench sweeps
the three policies and shows OLLA largely absorbs the difference: the
realized BLER stays near the 10% target while throughput moves only a
few percent.
"""

import numpy as np
import pytest

from repro.channel.model import SyntheticChannel
from repro.nr.cqi import MappingPolicy
from repro.operators.profiles import EU_PROFILES
from repro.ran.simulator import simulate_downlink


def _run_policy(policy: MappingPolicy) -> dict:
    from dataclasses import replace

    profile = EU_PROFILES["V_Sp"]
    cell = replace(profile.primary_cell, mapping_policy=policy)
    rng = np.random.default_rng(2024)
    channel = profile.dl_channel().realize(8.0, mu=cell.mu, rng=rng)
    trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
    return {"tput": trace.mean_throughput_mbps, "bler": trace.bler}


def test_ablation_cqi_mcs_policy(benchmark):
    results = benchmark.pedantic(
        lambda: {policy.name: _run_policy(policy) for policy in MappingPolicy},
        rounds=1, iterations=1,
    )
    for name, row in results.items():
        # OLLA keeps every policy near the BLER target.
        assert row["bler"] == pytest.approx(0.10, abs=0.04), name
    throughputs = [row["tput"] for row in results.values()]
    spread = (max(throughputs) - min(throughputs)) / max(throughputs)
    assert spread < 0.10  # the outer loop absorbs the vendor offset
