"""Bench T2 — regenerate Table 2 (EU network configs)."""


def test_table2_eu_configs(run_figure):
    result = run_figure("table2")
    data = result.data
    # Row 7 of Table 2, verbatim.
    expected_nrb = {"O_Sp_100": 273, "O_Sp_90": 245, "V_Sp": 245, "O_Fr": 245,
                    "S_Fr": 217, "V_It": 217, "T_Ge": 245, "V_Ge": 217}
    for key, n_rb in expected_nrb.items():
        assert data[key][0]["n_rb"] == n_rb
        assert data[key][0]["band"] == "n78"
        assert data[key][0]["scs_khz"] == 30
        assert data[key][0]["duplexing"] == "TDD"
        assert not data[key][0]["ca"]
