"""Bench F17 — Fig. 17 chunk length 4 s vs 1 s."""


def test_fig17_chunk_length(run_figure):
    result = run_figure("fig17")
    for key in ("O_Fr", "V_Ge"):
        row = result.data[key]
        assert row["stall_reduction"] > 0.3   # paper: ~50% stall cut
        assert row["bitrate_gain"] > -0.15    # paper: up to +40%
