"""Bench F19 — Fig. 19 mid-band vs mmWave QoE."""


def test_fig19_mmwave_qoe(run_figure):
    result = run_figure("fig19")
    set_a = result.data["set_a"]
    assert set_a["mmwave"]["norm_bitrate"] >= set_a["midband"]["norm_bitrate"] - 0.05
    assert set_a["mmwave"]["stall_pct"] >= set_a["midband"]["stall_pct"] - 0.01
    set_b = result.data["set_b"]
    assert set_b["driving"]["bitrate_mbps"] <= set_b["walking"]["bitrate_mbps"]
    assert 0.3 <= set_b["driving"]["bitrate_tput_fraction"] <= 1.1  # paper 80.8%
