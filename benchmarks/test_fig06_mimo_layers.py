"""Bench F6 — Fig. 6 MIMO-layer shares (Spain)."""

import pytest

from repro import papertargets as targets


def test_fig06_mimo_layers(run_figure):
    result = run_figure("fig06")
    data = result.data
    assert data["V_Sp"].get(4, 0.0) == pytest.approx(87.1, abs=15.0)
    assert data["O_Sp_90"].get(4, 0.0) == pytest.approx(83.8, abs=15.0)
    assert data["O_Sp_100"].get(4, 0.0) == pytest.approx(13.8, abs=10.0)
    assert data["O_Sp_100"].get(3, 0.0) == pytest.approx(74.1, abs=15.0)
