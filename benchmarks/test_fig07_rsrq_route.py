"""Bench F7 — Figs. 7/22 RSRQ along a walking route (3 vs 2 gNBs)."""


def test_fig07_rsrq_route(run_figure):
    result = run_figure("fig07")
    vodafone = result.data["V_Sp (3 gNBs)"]
    orange = result.data["O_Sp (2 gNBs)"]
    assert vodafone["n_sites"] == 3 and orange["n_sites"] == 2
    # Denser deployment: better worst-case signal quality, more 4-layer
    # MIMO, higher throughput — the paper's causal chain.
    assert vodafone["rsrq_p10"] >= orange["rsrq_p10"] - 0.5
    assert vodafone["share_4l"] > orange["share_4l"]
    assert vodafone["mean_tput_mbps"] > orange["mean_tput_mbps"]
